"""Resource fault-state lifecycle and cancellable engine events."""

import numpy as np
import pytest

from repro.errors import FaultError, ResourceUnavailableError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.queues import FifoResource, LinkResource


class TestFifoFailureState:
    def test_submit_while_down_raises(self):
        res = FifoResource("srv", rate=1e9)
        res.fail(1.0)
        with pytest.raises(ResourceUnavailableError, match="while down"):
            res.submit(2.0, 100.0)

    def test_double_fail_raises(self):
        res = FifoResource("srv", rate=1e9)
        res.fail(1.0)
        with pytest.raises(FaultError, match="already down"):
            res.fail(2.0)

    def test_recover_while_up_raises(self):
        res = FifoResource("srv", rate=1e9)
        with pytest.raises(FaultError, match="not down"):
            res.recover(1.0)

    def test_recover_before_failure_raises(self):
        res = FifoResource("srv", rate=1e9)
        res.fail(2.0)
        with pytest.raises(FaultError, match="precedes"):
            res.recover(1.0)

    def test_fail_clamps_busy_horizon_and_busy_time(self):
        res = FifoResource("srv", rate=100.0)
        res.submit(0.0, 400.0)  # busy until t=4
        res.fail(1.0)
        # 3 s of un-served residual is subtracted from utilization accounting
        assert res.busy_time == pytest.approx(1.0)
        res.recover(5.0)
        # post-recovery work starts at recovery, not the stale busy horizon
        start, finish = res.submit(5.0, 100.0)
        assert start == pytest.approx(5.0)
        assert finish == pytest.approx(6.0)

    def test_recover_records_outage_window(self):
        res = FifoResource("srv", rate=1e9)
        res.fail(1.0)
        res.recover(3.5)
        assert res.outages == [(1.0, 3.5)]
        assert not res.is_down

    def test_speed_factor_validation(self):
        res = FifoResource("srv", rate=1e9)
        with pytest.raises(FaultError, match="positive"):
            res.set_speed_factor(0.0)
        with pytest.raises(FaultError, match="positive"):
            res.set_speed_factor(-1.0)

    def test_speed_factor_scales_service(self):
        res = FifoResource("srv", rate=100.0)
        res.set_speed_factor(0.5)
        _, finish = res.submit(0.0, 100.0)
        assert finish == pytest.approx(2.0)

    def test_sweep_refuses_fault_state(self):
        res = FifoResource("srv", rate=100.0)
        res.fail(0.5)
        res.recover(1.0)
        with pytest.raises(SimulationError, match="incompatible with faults"):
            res.sweep(np.array([2.0]), np.array([10.0]))


class TestLinkFailureState:
    def test_submit_while_down_raises(self):
        link = LinkResource("up", bandwidth_bps=1e6)
        link.fail(0.0)
        with pytest.raises(ResourceUnavailableError):
            link.submit(1.0, 1000.0)

    def test_recover_then_transfer(self):
        link = LinkResource("up", bandwidth_bps=1e6)
        link.fail(0.0)
        link.recover(2.0)
        start, delivery = link.submit(2.0, 1e6)
        assert start == pytest.approx(2.0)
        assert delivery == pytest.approx(3.0)
        assert link.outages == [(0.0, 2.0)]

    def test_speed_factor_scales_serialization(self):
        link = LinkResource("up", bandwidth_bps=1e6)
        link.set_speed_factor(0.25)
        _, delivery = link.submit(0.0, 1e6)
        assert delivery == pytest.approx(4.0)

    def test_sweep_refuses_fault_state(self):
        link = LinkResource("up", bandwidth_bps=1e6)
        link.set_speed_factor(0.5)
        with pytest.raises(SimulationError, match="incompatible with faults"):
            link.sweep(np.array([0.0]), np.array([100.0]))


class TestCancellableEvents:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule_at_cancellable(1.0, lambda: fired.append("a"))
        sim.schedule_at(2.0, lambda: fired.append("b"))
        handle.cancel()
        sim.run()
        assert fired == ["b"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule_at_cancellable(1.0, lambda: None)
        handle.cancel()
        handle.cancel()  # must not raise
        sim.run()

    def test_uncancelled_event_fires_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at_cancellable(2.0, lambda: fired.append("late"))
        sim.schedule_at(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]
