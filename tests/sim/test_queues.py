"""FIFO resources and link serialization."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.network.wireless import BandwidthTrace
from repro.sim.queues import FifoResource, LinkResource


class TestFifoResource:
    def test_idle_starts_immediately(self):
        r = FifoResource("r", rate=100.0)
        start, finish = r.submit(1.0, 50.0)
        assert start == 1.0
        assert finish == pytest.approx(1.5)

    def test_busy_queues(self):
        r = FifoResource("r", rate=100.0)
        r.submit(0.0, 100.0)  # busy until 1.0
        start, finish = r.submit(0.2, 100.0)
        assert start == pytest.approx(1.0)
        assert finish == pytest.approx(2.0)

    def test_overhead_added(self):
        r = FifoResource("r", rate=100.0, overhead_s=0.5)
        _, finish = r.submit(0.0, 100.0)
        assert finish == pytest.approx(1.5)

    def test_zero_work_instant(self):
        r = FifoResource("r", rate=100.0, overhead_s=0.5)
        start, finish = r.submit(3.0, 0.0)
        assert start == finish == 3.0

    def test_utilization(self):
        r = FifoResource("r", rate=100.0)
        r.submit(0.0, 500.0)
        assert r.utilization(10.0) == pytest.approx(0.5)

    def test_negative_work_raises(self):
        with pytest.raises(SimulationError):
            FifoResource("r", rate=100.0).submit(0.0, -1.0)

    def test_invalid_rate(self):
        with pytest.raises(SimulationError):
            FifoResource("r", rate=0.0)


class TestLinkResource:
    def test_fixed_bandwidth(self):
        l = LinkResource("l", bandwidth_bps=1000.0, rtt_s=0.01)
        start, done = l.submit(0.0, 500.0)
        assert done == pytest.approx(0.5 + 0.005)

    def test_propagation_does_not_block_channel(self):
        l = LinkResource("l", bandwidth_bps=1000.0, rtt_s=1.0)
        l.submit(0.0, 1000.0)  # serialized until 1.0, delivered at 1.5
        start2, _ = l.submit(0.0, 1000.0)
        assert start2 == pytest.approx(1.0)  # not 1.5

    def test_share_scales(self):
        l = LinkResource("l", bandwidth_bps=1000.0, share=0.5)
        _, done = l.submit(0.0, 500.0)
        assert done == pytest.approx(1.0)

    def test_zero_bytes_instant(self):
        l = LinkResource("l", bandwidth_bps=1000.0, rtt_s=1.0)
        assert l.submit(2.0, 0.0) == (2.0, 2.0)

    def test_trace_integration_within_segment(self):
        tr = BandwidthTrace(times=np.array([0.0]), values=np.array([1000.0]))
        l = LinkResource("l", bandwidth_bps=999.0, trace=tr)
        _, done = l.submit(0.0, 500.0)
        assert done == pytest.approx(0.5)

    def test_trace_integration_across_change_point(self):
        # 1000 B/s for 1s, then 100 B/s: 1500 B needs 1s + 5s
        tr = BandwidthTrace(times=np.array([0.0, 1.0]), values=np.array([1000.0, 100.0]))
        l = LinkResource("l", bandwidth_bps=999.0, trace=tr)
        _, done = l.submit(0.0, 1500.0)
        assert done == pytest.approx(6.0)

    def test_trace_with_share(self):
        tr = BandwidthTrace(times=np.array([0.0]), values=np.array([1000.0]))
        l = LinkResource("l", bandwidth_bps=999.0, share=0.5, trace=tr)
        _, done = l.submit(0.0, 500.0)
        assert done == pytest.approx(1.0)

    def test_fifo_ordering_preserved(self):
        l = LinkResource("l", bandwidth_bps=1000.0)
        _, d1 = l.submit(0.0, 1000.0)
        s2, d2 = l.submit(0.1, 100.0)
        assert s2 == pytest.approx(1.0)
        assert d2 > d1 - 1.0  # second transfer serialized after first

    def test_invalid_bandwidth(self):
        with pytest.raises(SimulationError):
            LinkResource("l", bandwidth_bps=0.0)

    def test_invalid_share(self):
        with pytest.raises(SimulationError):
            LinkResource("l", bandwidth_bps=1.0, share=0.0)
