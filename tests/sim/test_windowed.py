"""Windowed SLO metrics across simulation engines: identity + error surface.

Contracts under test (see DESIGN.md §9):

- ``SimulationConfig(windows=...)`` works on *every* engine — event loop,
  one-shot fast path, chunked streaming sweep, sharded cell fan-out — with
  **bit-identical** windowed integer state and SLO reports on a fixed seed;
- merged reports refuse to mix windowed and window-free members (all-or-none);
- the streaming error surface is precise: per-request timelines stay
  unsupported with a message that points at the windowed alternative, while
  ``windows=`` runs are accepted.
"""

import pytest

from repro.core.joint import JointOptimizer
from repro.errors import ConfigError, SimulationError
from repro.sim import SimulationConfig, merge_reports, run_cells
from repro.sim.runner import simulate_plan
from repro.telemetry.timeline import TimelineRecorder
from repro.telemetry.slo import SLOPolicy, SLOTarget, evaluate_slos
from repro.telemetry.windows import WindowConfig

WINDOWS = WindowConfig(window_s=0.5)


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


def _cfg(**overrides) -> SimulationConfig:
    kw = dict(horizon_s=8.0, warmup_s=1.0, seed=11, windows=WINDOWS)
    kw.update(overrides)
    return SimulationConfig(**kw)


def _slo(report):
    return evaluate_slos(
        report.windowed, SLOPolicy(targets=(SLOTarget(target=0.9),))
    )


class TestCrossEngineIdentity:
    """One workload, three engines, one windowed fingerprint."""

    def test_event_loop_fast_path_streaming_identical(
        self, small_cluster, small_tasks, solved
    ):
        fast = simulate_plan(small_tasks, solved, small_cluster, _cfg())
        event = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(fast_path=False)
        )
        stream = simulate_plan(
            small_tasks, solved, small_cluster,
            _cfg(streaming=True, chunk_size=64),
        )
        fp = fast.windowed.fingerprint()
        assert event.windowed.fingerprint() == fp
        assert stream.windowed.fingerprint() == fp
        # ... and the derived SLO reports are bit-identical too
        slo_fp = _slo(fast).fingerprint()
        assert _slo(event).fingerprint() == slo_fp
        assert _slo(stream).fingerprint() == slo_fp

    def test_chunk_size_invariant(self, small_cluster, small_tasks, solved):
        fps = {
            simulate_plan(
                small_tasks, solved, small_cluster,
                _cfg(streaming=True, chunk_size=cs),
            ).windowed.fingerprint()
            for cs in (7, 64, 10**9)
        }
        assert len(fps) == 1

    def test_single_cell_reproduces_plain_streaming(
        self, small_cluster, small_tasks, solved
    ):
        plain = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True)
        )
        celled = run_cells(
            small_tasks, solved, small_cluster, _cfg(streaming=True), cells=1
        )
        assert celled.windowed.fingerprint() == plain.windowed.fingerprint()
        assert _slo(celled).fingerprint() == _slo(plain).fingerprint()

    def test_cell_fan_out_conserves_windowed_totals(
        self, small_cluster, small_tasks, solved
    ):
        merged = run_cells(
            small_tasks, solved, small_cluster, _cfg(streaming=True), cells=3
        )
        assert merged.windowed is not None
        assert merged.windowed.total_count == merged.counters.records

    def test_windows_off_costs_nothing(self, small_cluster, small_tasks, solved):
        report = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(windows=None)
        )
        assert report.windowed is None


class TestMergeSurface:
    def test_mixed_merge_rejected(self, small_cluster, small_tasks, solved):
        with_w = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True)
        )
        without = simulate_plan(
            small_tasks, solved, small_cluster,
            _cfg(streaming=True, windows=None),
        )
        with pytest.raises(SimulationError, match="windowed and window-free"):
            merge_reports([with_w, without])


class TestStreamingErrorSurface:
    """Satellite: the streaming-telemetry restriction is precise, not blanket."""

    def test_per_request_telemetry_error_names_the_alternative(self):
        # the message must say WHY (event-boundary sampling) and point at the
        # supported windowed path, not just refuse
        with pytest.raises(ConfigError, match="windows=WindowConfig"):
            _cfg(streaming=True, telemetry=True)
        with pytest.raises(ConfigError, match="event boundaries"):
            _cfg(streaming=True, telemetry=True)

    def test_explicit_recorder_rejected_with_windowed_hint(
        self, small_cluster, small_tasks, solved
    ):
        with pytest.raises(ConfigError, match="windows=WindowConfig"):
            simulate_plan(
                small_tasks, solved, small_cluster,
                _cfg(streaming=True),
                recorder=TimelineRecorder(),
            )

    def test_windowed_streaming_is_supported(
        self, small_cluster, small_tasks, solved
    ):
        # the supported branch of the restriction: window-granularity metrics
        # on a streaming run construct and populate without complaint
        report = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True)
        )
        assert report.windowed is not None
        assert report.windowed.total_count == report.counters.records
