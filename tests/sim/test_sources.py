"""Arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.sources import (
    DeterministicArrivals,
    MMPPArrivals,
    PoissonArrivals,
    TraceArrivals,
)


class TestPoisson:
    def test_rate_approximately_honored(self):
        times = PoissonArrivals(10.0).generate(200.0, seed=1)
        assert len(times) / 200.0 == pytest.approx(10.0, rel=0.1)

    def test_strictly_increasing(self):
        times = PoissonArrivals(5.0).generate(50.0, seed=2)
        assert np.all(np.diff(times) > 0)

    def test_within_horizon(self):
        times = PoissonArrivals(5.0).generate(10.0, seed=3)
        assert times.max() < 10.0

    def test_deterministic_given_seed(self):
        a = PoissonArrivals(5.0).generate(10.0, seed=4)
        b = PoissonArrivals(5.0).generate(10.0, seed=4)
        np.testing.assert_array_equal(a, b)

    def test_exponential_gaps(self):
        times = PoissonArrivals(10.0).generate(500.0, seed=5)
        gaps = np.diff(times)
        # CV of exponential is 1
        assert gaps.std() / gaps.mean() == pytest.approx(1.0, abs=0.1)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigError):
            PoissonArrivals(1.0).generate(0.0)


class TestDeterministic:
    def test_even_spacing(self):
        times = DeterministicArrivals(4.0).generate(2.0, seed=0)
        np.testing.assert_allclose(times, [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75])

    def test_count(self):
        assert len(DeterministicArrivals(10.0).generate(1.0)) == 9  # last lands at horizon


class TestMMPP:
    def test_mean_rate_formula(self):
        m = MMPPArrivals(low_rate=2.0, high_rate=10.0, mean_low_s=3.0, mean_high_s=1.0)
        assert m.mean_rate == pytest.approx((2 * 3 + 10 * 1) / 4)

    def test_empirical_rate_near_mean(self):
        m = MMPPArrivals(low_rate=2.0, high_rate=10.0, mean_low_s=3.0, mean_high_s=1.0)
        times = m.generate(2000.0, seed=6)
        assert len(times) / 2000.0 == pytest.approx(m.mean_rate, rel=0.15)

    def test_burstier_than_poisson(self):
        m = MMPPArrivals(low_rate=1.0, high_rate=20.0, mean_low_s=5.0, mean_high_s=1.0)
        times = m.generate(2000.0, seed=7)
        gaps = np.diff(times)
        assert gaps.std() / gaps.mean() > 1.2  # CV > 1 = burstier

    def test_high_below_low_raises(self):
        with pytest.raises(ConfigError):
            MMPPArrivals(low_rate=5.0, high_rate=2.0)


class TestTrace:
    def test_replay_clipped_to_horizon(self):
        t = TraceArrivals([0.5, 1.5, 2.5])
        np.testing.assert_array_equal(t.generate(2.0), [0.5, 1.5])

    def test_non_increasing_raises(self):
        with pytest.raises(ConfigError):
            TraceArrivals([1.0, 1.0])

    def test_negative_raises(self):
        with pytest.raises(ConfigError):
            TraceArrivals([-1.0, 1.0])
