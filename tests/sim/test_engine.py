"""Discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        sim = Simulator()
        log = []
        for i in range(5):
            sim.schedule(1.0, lambda i=i: log.append(i))
        sim.run()
        assert log == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]
        assert sim.now == 1.5

    def test_events_can_schedule_events(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(0.5, lambda: log.append(("second", sim.now)))

        sim.schedule(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 1.5)]

    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.schedule_at(0.5, lambda: None))
        with pytest.raises(SimulationError):
            sim.run()


class TestRun:
    def test_until_stops_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        t = sim.run(until=2.0)
        assert t == 2.0 and not fired
        sim.run()
        assert fired == [1]

    def test_until_advances_clock_when_empty(self):
        sim = Simulator()
        assert sim.run(until=7.0) == 7.0

    def test_event_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 3
        assert sim.pending == 0

    def test_runaway_guard(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.1, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(SimulationError):
            sim.run(until=1e9, max_events=100)
