"""Simulator event timelines: lifecycle events match hand-computed times."""

import numpy as np
import pytest

from repro.core.plan import JointPlan
from repro.devices.latency import LatencyModel
from repro.rng import derive
from repro.sim.execution import realize_request
from repro.sim.runner import SimulationConfig, simulate_plan
from repro.sim.sources import DeterministicArrivals
from repro.telemetry.timeline import TimelineRecorder


def _local_plan(tasks, candidate_sets):
    """A JointPlan keeping every task fully on its device."""
    features = {}
    for t, cs in zip(tasks, candidate_sets):
        local = next(f for f in cs.features if f.is_local_only)
        features[t.name] = local
    return JointPlan(
        assignment={t.name: None for t in tasks},
        features=features,
        compute_shares={t.name: 1.0 for t in tasks},
        bandwidth_shares={t.name: 1.0 for t in tasks},
        latencies={t.name: 0.1 for t in tasks},
        objective_value=0.1,
    )


@pytest.fixture()
def local_run(small_cluster, small_tasks, small_candidates):
    plan = _local_plan(small_tasks, small_candidates)
    cfg = SimulationConfig(
        horizon_s=1.2, warmup_s=0.0, arrival="deterministic", seed=5, telemetry=True
    )
    report = simulate_plan(small_tasks, plan, small_cluster, cfg)
    return plan, cfg, report


class TestTimelineEvents:
    def test_two_task_lifecycle_matches_hand_computation(
        self, small_cluster, small_tasks, local_run
    ):
        plan, cfg, report = local_run
        tl = report.timeline
        assert tl is not None
        lm = LatencyModel()
        for task in small_tasks:
            device = next(
                d for d in small_cluster.end_devices if d.name == task.device_name
            )
            rate = lm.throughput(device)
            arrivals = DeterministicArrivals(task.arrival_rate).generate(
                cfg.horizon_s, 0
            )
            # hand-rolled FIFO: service = flops/rate + overhead, no preemption
            busy_until = 0.0
            for req_id, at in enumerate(arrivals):
                feats = plan.features[task.name]
                rng = derive(cfg.seed, "exec", task.name, req_id)
                diff_rng = derive(cfg.seed, "difficulty", task.name)
                difficulty = float(
                    np.clip(
                        task.model.difficulty.sample(diff_rng, len(arrivals))[req_id],
                        0.0,
                        1.0,
                    )
                )
                demand = realize_request(task.model, feats.plan, difficulty, rng)
                assert not demand.offloaded  # local-only plan never offloads
                start = max(float(at), busy_until)
                service = demand.dev_flops / rate + device.overhead_s
                busy_until = start + service

                events = tl.for_request(task.name, req_id)
                kinds = [e.kind for e in events]
                assert kinds == [
                    "enqueue", "dequeue", "exec_start", "exit_taken", "complete",
                ]
                by_kind = {e.kind: e for e in events}
                assert by_kind["enqueue"].t_s == pytest.approx(float(at))
                assert by_kind["dequeue"].t_s == pytest.approx(start)
                assert by_kind["exec_start"].t_s == pytest.approx(start)
                assert by_kind["complete"].t_s == pytest.approx(start + service)
                assert by_kind["exit_taken"].value == float(demand.exit_position)
                assert by_kind["enqueue"].resource == f"dev:{task.device_name}"

    def test_counts_cover_every_request(self, small_tasks, local_run):
        _, cfg, report = local_run
        n = sum(
            len(DeterministicArrivals(t.arrival_rate).generate(cfg.horizon_s, 0))
            for t in small_tasks
        )
        counts = report.timeline.counts()
        assert counts["enqueue"] == n
        assert counts["complete"] == n
        assert "transfer_start" not in counts  # purely local plan

    def test_perfetto_events_serializable(self, local_run):
        import json

        _, _, report = local_run
        events = report.timeline.perfetto_events()
        decoded = json.loads(json.dumps(events))
        slices = [e for e in decoded if e["ph"] == "X"]
        assert slices and all(e["dur"] >= 0 for e in slices)


class TestTelemetryGauges:
    def test_queue_and_utilization_gauges_sampled(self, local_run):
        _, _, report = local_run
        reg = report.registry
        assert reg is not None
        names = reg.names()
        assert any(n.startswith("sim.queue_depth.dev:") for n in names)
        assert any(n.startswith("sim.utilization.dev:") for n in names)
        assert reg.counter("sim.realized.requests").value == report.timeline.counts()[
            "enqueue"
        ]
        for name in names:
            if name.startswith("sim.utilization."):
                g = reg.gauge(name)
                assert 0.0 <= g.max <= 1.0

    def test_latency_histogram_observes_every_request(self, local_run):
        _, _, report = local_run
        h = report.registry.histogram("sim.latency_ms")
        assert h.total == report.timeline.counts()["complete"]


class TestDisabledPath:
    def test_no_telemetry_keeps_report_bitequal(
        self, small_cluster, small_tasks, small_candidates
    ):
        plan = _local_plan(small_tasks, small_candidates)
        cfg_on = SimulationConfig(
            horizon_s=1.2, warmup_s=0.0, arrival="deterministic", seed=5,
            telemetry=True,
        )
        cfg_off = SimulationConfig(
            horizon_s=1.2, warmup_s=0.0, arrival="deterministic", seed=5,
        )
        on = simulate_plan(small_tasks, plan, small_cluster, cfg_on)
        off = simulate_plan(small_tasks, plan, small_cluster, cfg_off)
        assert off.timeline is None and off.registry is None
        assert [
            (r.task_name, r.req_id, r.arrival_s, r.completion_s, r.correct)
            for r in on.records
        ] == [
            (r.task_name, r.req_id, r.arrival_s, r.completion_s, r.correct)
            for r in off.records
        ]

    def test_explicit_recorder_overrides_config(
        self, small_cluster, small_tasks, small_candidates
    ):
        plan = _local_plan(small_tasks, small_candidates)
        rec = TimelineRecorder()
        cfg = SimulationConfig(
            horizon_s=1.2, warmup_s=0.0, arrival="deterministic", seed=5
        )
        report = simulate_plan(small_tasks, plan, small_cluster, cfg, recorder=rec)
        assert report.timeline is rec.timeline
        assert len(rec.timeline) > 0
