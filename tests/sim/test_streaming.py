"""The chunked streaming sweep: bit-identity, bounded memory, shard merge.

Contracts under test (see DESIGN.md "Simulator performance"):

- the chunked sweep is **bit-identical** to the one-shot fast path: with a
  reservoir large enough to keep every record, streaming reproduces the
  exact record set (all fields) regardless of chunk size or arrival model;
- record-free streaming reports agree with record-backed reports on every
  scalar summary — integer-derived ones (miss rate, accuracy, goodput,
  counters) exactly, mean latency to float-sum tolerance, percentiles to
  one histogram bin of the ceil-rank order statistic;
- sharded traffic cells merge deterministically: ``cells=1`` reproduces a
  plain streaming run, serial and pooled fan-outs are identical, and the
  merged counters conserve.
"""

import math
from dataclasses import replace

import numpy as np
import pytest

from repro.core.joint import JointOptimizer
from repro.errors import ConfigError, SimulationError
from repro.sim import (
    LatencyHistogram,
    SimulationConfig,
    StreamingStats,
    merge_reports,
    run_cells,
)
from repro.sim.runner import simulate_plan

ARRIVALS = ("poisson", "deterministic", "mmpp")
#: large enough that the reservoir never evicts — streaming keeps all records
KEEP_ALL = 1_000_000


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


def _cfg(**overrides) -> SimulationConfig:
    kw = dict(horizon_s=8.0, warmup_s=1.0, seed=11)
    kw.update(overrides)
    return SimulationConfig(**kw)


def _sorted_records(report):
    return sorted(report.records, key=lambda r: (r.task_name, r.req_id))


def _exact_quantile(latencies: np.ndarray, q: float) -> float:
    """The order statistic the histogram quantile is defined against."""
    rank = math.ceil((latencies.size - 1) * q / 100.0)
    return float(np.sort(latencies)[rank])


class TestChunkedBitIdentity:
    """Streaming with a keep-all reservoir == one-shot fast path, any chunking."""

    @pytest.mark.parametrize("arrival", ARRIVALS)
    @pytest.mark.parametrize("chunk_size", [7, 64, 10**9])
    def test_record_set_identical(
        self, small_cluster, small_tasks, solved, arrival, chunk_size
    ):
        one_shot = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(arrival=arrival)
        )
        streamed = simulate_plan(
            small_tasks, solved, small_cluster,
            _cfg(
                arrival=arrival, streaming=True, chunk_size=chunk_size,
                max_records=KEEP_ALL,
            ),
        )
        # record ORDER is an observation artifact (streaming observes at
        # window boundaries); the record SET carries every simulated value
        assert _sorted_records(streamed) == _sorted_records(one_shot)
        assert streamed.counters == one_shot.counters
        assert streamed.utilizations == one_shot.utilizations
        assert streamed.discarded_warmup == one_shot.discarded_warmup

    def test_chunk_size_does_not_change_results(
        self, small_cluster, small_tasks, solved
    ):
        reports = [
            simulate_plan(
                small_tasks, solved, small_cluster,
                _cfg(streaming=True, chunk_size=c, max_records=KEEP_ALL),
            )
            for c in (3, 50, 4096)
        ]
        first = reports[0]
        for other in reports[1:]:
            assert _sorted_records(other) == _sorted_records(first)
            assert other.counters == first.counters


class TestScalarEquivalence:
    """Record-free streaming summaries == record-backed summaries."""

    @pytest.mark.parametrize("arrival", ARRIVALS)
    def test_summary_scalars(self, small_cluster, small_tasks, solved, arrival):
        record_backed = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(arrival=arrival)
        )
        streamed = simulate_plan(
            small_tasks, solved, small_cluster,
            _cfg(arrival=arrival, streaming=True, chunk_size=64),
        )
        assert streamed.streaming and not streamed.records
        assert streamed.counters == record_backed.counters
        assert streamed.total_requests == record_backed.total_requests
        # integer-derived scalars are exact
        assert streamed.miss_rate == record_backed.miss_rate
        assert streamed.accuracy == record_backed.accuracy
        assert streamed.goodput() == record_backed.goodput()
        # float means accumulate per-chunk np.sum + Neumaier compensation
        assert streamed.mean_latency_s == pytest.approx(
            record_backed.mean_latency_s, rel=1e-12
        )

    @pytest.mark.parametrize("q", [50.0, 95.0, 99.0])
    def test_histogram_quantiles(self, small_cluster, small_tasks, solved, q):
        """hist quantile = upper bin edge of the ceil-rank order statistic.

        np.percentile *interpolates* between order statistics, so the
        histogram is compared against the order statistic itself: the
        reported value must sit within one bin above it.
        """
        record_backed = simulate_plan(
            small_tasks, solved, small_cluster, _cfg()
        )
        streamed = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True)
        )
        exact = _exact_quantile(record_backed.latencies(), q)
        got = streamed.percentile_latency_s(q)
        assert exact <= got <= exact + streamed.stream.bin_s + 1e-12

    def test_per_task_stats(self, small_cluster, small_tasks, solved):
        record_backed = simulate_plan(small_tasks, solved, small_cluster, _cfg())
        streamed = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True)
        )
        assert set(streamed.per_task) == set(record_backed.per_task)
        for name, got in streamed.per_task.items():
            want = record_backed.per_task[name]
            assert got.count == want.count
            assert got.miss_rate == want.miss_rate
            assert got.accuracy == want.accuracy
            assert got.offload_fraction == want.offload_fraction
            assert got.mean_exit_position == pytest.approx(
                want.mean_exit_position, rel=1e-12
            )
            assert got.mean_latency_s == pytest.approx(
                want.mean_latency_s, rel=1e-12
            )
            assert got.max_latency_s == want.max_latency_s


class TestShardedCells:
    def test_one_cell_is_plain_streaming(self, small_cluster, small_tasks, solved):
        cfg = _cfg(streaming=True)
        merged = run_cells(small_tasks, solved, small_cluster, cfg, 1)
        plain = simulate_plan(small_tasks, solved, small_cluster, cfg)
        assert merged.counters == plain.counters
        assert merged.mean_latency_s == plain.mean_latency_s
        assert merged.miss_rate == plain.miss_rate

    def test_serial_equals_pooled(self, small_cluster, small_tasks, solved):
        cfg = _cfg(streaming=True)
        serial = run_cells(
            small_tasks, solved, small_cluster, replace(cfg, sim_workers=1), 4
        )
        pooled = run_cells(
            small_tasks, solved, small_cluster, replace(cfg, sim_workers=4), 4
        )
        assert serial.counters == pooled.counters
        assert serial.counters.conserved()
        assert serial.mean_latency_s == pooled.mean_latency_s
        assert serial.miss_rate == pooled.miss_rate

    def test_cells_thin_the_offered_load(self, small_cluster, small_tasks, solved):
        """4 cells at rate/4 each ≈ the single-cell request volume."""
        cfg = _cfg(streaming=True, horizon_s=30.0)
        merged = run_cells(small_tasks, solved, small_cluster, cfg, 4)
        single = simulate_plan(small_tasks, solved, small_cluster, cfg)
        assert merged.streaming
        assert merged.counters.conserved()
        assert merged.counters.requests == pytest.approx(
            single.counters.requests, rel=0.25
        )

    def test_empty_cell_is_benign(self, small_cluster, small_tasks, solved):
        """Thinning across many cells may leave a cell with zero arrivals in
        the horizon — the merge must absorb it, not raise."""
        thin = [replace(t, arrival_rate=0.4) for t in small_tasks]
        cfg = _cfg(streaming=True, horizon_s=4.0, warmup_s=0.0)
        # enough cells that some draw no arrivals at rate*horizon/cells = 0.2
        merged = run_cells(thin, solved, small_cluster, cfg, 8)
        assert merged.counters.requests > 0
        assert merged.counters.conserved()

    def test_all_cells_empty_raises(self, small_cluster, small_tasks, solved):
        dead = [replace(t, arrival_rate=1e-9) for t in small_tasks]
        cfg = _cfg(streaming=True, horizon_s=1.0, warmup_s=0.0)
        with pytest.raises(SimulationError, match="no requests"):
            run_cells(dead, solved, small_cluster, cfg, 4)

    def test_invalid_cells(self, small_cluster, small_tasks, solved):
        with pytest.raises(ConfigError, match="cells"):
            run_cells(
                small_tasks, solved, small_cluster, _cfg(streaming=True), 0
            )


class TestLatencyHistogram:
    def test_quantile_matches_order_statistic(self):
        rng = np.random.default_rng(3)
        data = rng.exponential(0.05, size=5000)
        hist = LatencyHistogram(bin_s=1e-3, max_s=10.0)
        hist.observe(data)
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            exact = _exact_quantile(data, q)
            got = hist.quantile(q)
            assert exact <= got <= exact + hist.bin_s + 1e-12

    def test_chunked_observe_equals_one_shot(self):
        rng = np.random.default_rng(4)
        data = rng.exponential(0.05, size=1000)
        whole = LatencyHistogram()
        whole.observe(data)
        parts = LatencyHistogram()
        for chunk in np.array_split(data, 7):
            parts.observe(chunk)
        np.testing.assert_array_equal(parts.counts, whole.counts)
        assert parts.overflow == whole.overflow
        assert parts.min_s == whole.min_s
        assert parts.max_seen_s == whole.max_seen_s

    def test_overflow_bucket(self):
        hist = LatencyHistogram(bin_s=0.1, max_s=1.0)
        hist.observe(np.array([0.05, 0.5, 3.0, 7.0]))
        assert hist.overflow == 2
        assert hist.max_seen_s == 7.0
        # p100 falls in the overflow bucket: exact running max is returned
        assert hist.quantile(100.0) == 7.0

    def test_merge_is_exact(self):
        rng = np.random.default_rng(5)
        a_data = rng.exponential(0.05, size=400)
        b_data = rng.exponential(0.2, size=600)
        a, b, both = LatencyHistogram(), LatencyHistogram(), LatencyHistogram()
        a.observe(a_data)
        b.observe(b_data)
        both.observe(np.concatenate([a_data, b_data]))
        a.merge(b)
        np.testing.assert_array_equal(a.counts, both.counts)
        assert a.overflow == both.overflow
        assert a.max_seen_s == both.max_seen_s

    def test_merge_binning_mismatch(self):
        a = LatencyHistogram(bin_s=1e-3)
        b = LatencyHistogram(bin_s=2e-3)
        with pytest.raises(SimulationError, match="binning"):
            a.merge(b)


class TestStreamingStatsReservoir:
    @staticmethod
    def _observe(stats, n, seed=0, task="t"):
        rng = np.random.default_rng(seed)
        arrival = np.sort(rng.uniform(0, 10, n))
        lat = rng.exponential(0.05, n)
        stats.observe(
            task,
            np.arange(n, dtype=np.int64),
            arrival,
            arrival + lat,
            arrival + 0.2,
            np.zeros(n, dtype=np.int64),
            np.zeros(n, dtype=bool),
            np.ones(n, dtype=bool),
            lat,
            np.zeros(n),
            np.zeros(n),
        )

    def test_bounded_and_seeded(self):
        a = StreamingStats(max_records=32, seed=7)
        b = StreamingStats(max_records=32, seed=7)
        for s in (a, b):
            self._observe(s, 500)
        assert len(a.reservoir) == 32
        assert a.reservoir == b.reservoir  # same seed → same sample
        c = StreamingStats(max_records=32, seed=8)
        self._observe(c, 500)
        assert c.reservoir != a.reservoir  # different seed → different sample

    def test_keeps_all_when_large(self):
        s = StreamingStats(max_records=1000, seed=0)
        self._observe(s, 100)
        assert len(s.reservoir) == 100

    def test_zero_keeps_none(self):
        s = StreamingStats(max_records=0)
        self._observe(s, 100)
        assert s.reservoir == []
        assert s.count == 100


class TestStreamingReportSurface:
    def test_latencies_raise(self, small_cluster, small_tasks, solved):
        streamed = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True)
        )
        with pytest.raises(SimulationError, match="streaming reports keep no"):
            streamed.latencies()

    def test_reservoir_records_are_real(self, small_cluster, small_tasks, solved):
        one_shot = simulate_plan(small_tasks, solved, small_cluster, _cfg())
        sampled = simulate_plan(
            small_tasks, solved, small_cluster,
            _cfg(streaming=True, max_records=16),
        )
        assert len(sampled.records) == 16
        full = {(r.task_name, r.req_id): r for r in one_shot.records}
        for rec in sampled.records:
            assert full[(rec.task_name, rec.req_id)] == rec

    def test_config_validation(self):
        with pytest.raises(ConfigError, match="fast path"):
            _cfg(streaming=True, fast_path=False)
        with pytest.raises(ConfigError, match="telemetry"):
            _cfg(streaming=True, telemetry=True)
        with pytest.raises(ConfigError, match="chunk_size"):
            _cfg(streaming=True, chunk_size=0)
        with pytest.raises(ConfigError, match="max_records"):
            _cfg(streaming=True, max_records=-1)
        with pytest.raises(ConfigError, match="histogram bins"):
            _cfg(streaming=True, hist_bin_s=0.0)


class TestMergeReports:
    def test_empty_sequence_raises(self):
        with pytest.raises(SimulationError, match="at least one report"):
            merge_reports([])

    def test_mixed_modes_raise(self, small_cluster, small_tasks, solved):
        record_backed = simulate_plan(small_tasks, solved, small_cluster, _cfg())
        streamed = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True)
        )
        with pytest.raises(SimulationError, match="streaming and record-backed"):
            merge_reports([record_backed, streamed])

    def test_all_empty_records(self, small_cluster, small_tasks, solved):
        """Reports whose records were all warmup-discarded still merge."""
        # warmup ~ horizon: every completion is discarded, records == []
        cfg = _cfg(horizon_s=2.0, warmup_s=2.0 - 1e-9)
        empty = simulate_plan(small_tasks, solved, small_cluster, cfg)
        assert empty.records == []
        merged = merge_reports([empty, empty])
        assert merged.records == []
        assert merged.counters.conserved()
        assert merged.counters.requests == 2 * empty.counters.requests

    def test_streaming_merge_conserves(self, small_cluster, small_tasks, solved):
        a = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True, seed=1)
        )
        b = simulate_plan(
            small_tasks, solved, small_cluster, _cfg(streaming=True, seed=2)
        )
        merged = merge_reports([a, b])
        assert merged.streaming
        assert merged.counters.conserved()
        assert merged.counters.requests == (
            a.counters.requests + b.counters.requests
        )
        assert merged.total_requests == a.total_requests + b.total_requests


class TestCachedColumns:
    def test_latencies_cached(self, small_cluster, small_tasks, solved):
        report = simulate_plan(small_tasks, solved, small_cluster, _cfg())
        first = report.latencies()
        assert report.latencies() is first  # one pass over records, then reuse
        # derived scalars agree with a scan over the records
        assert report.miss_rate == pytest.approx(
            np.mean([not r.met_deadline for r in report.records])
        )
        assert report.accuracy == pytest.approx(
            np.mean([r.correct for r in report.records])
        )
