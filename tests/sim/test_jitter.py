"""Per-request service-time jitter: engine equivalence and determinism.

The jitter draws are counter-based (one RNG material per (task, stage),
indexed by request id), so every engine — event loop, one-shot fast path,
chunked streaming sweep, faults runtime — must realize the *identical*
per-request factors regardless of evaluation order or chunking.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.joint import JointOptimizer
from repro.errors import ConfigError
from repro.sim.execution import (
    JITTER_STAGES,
    jitter_factors,
    jitter_materials,
)
from repro.sim.runner import SimulationConfig, simulate_plan


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


def assert_reports_identical(a, b):
    assert a.records == b.records
    assert a.utilizations == b.utilizations
    assert a.discarded_warmup == b.discarded_warmup
    assert a.counters == b.counters


class TestConfigValidation:
    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(horizon_s=10.0, warmup_s=1.0, service_noise=-0.1)

    def test_epsilon_bounds(self):
        with pytest.raises(ConfigError):
            SimulationConfig(horizon_s=10.0, warmup_s=1.0, epsilon=0.0)
        with pytest.raises(ConfigError):
            SimulationConfig(horizon_s=10.0, warmup_s=1.0, epsilon=1.0)
        SimulationConfig(horizon_s=10.0, warmup_s=1.0, epsilon=0.05)  # ok


class TestJitterFactors:
    def test_mean_one_lognormal(self):
        mats = jitter_materials(0, "t0")
        f = jitter_factors(mats["dev"], np.arange(200_000), 0.2)
        assert f.min() > 0
        # exp(sigma*Z - sigma^2/2) has mean 1; loose band for sample error
        assert abs(f.mean() - 1.0) < 0.01

    def test_counter_based_order_independence(self):
        mats = jitter_materials(0, "t0")
        ids = np.array([5, 1, 9])
        whole = jitter_factors(mats["dev"], np.arange(10), 0.2)
        picked = jitter_factors(mats["dev"], ids, 0.2)
        np.testing.assert_array_equal(picked, whole[ids])

    def test_stages_draw_independently(self):
        mats = jitter_materials(0, "t0")
        per_stage = {
            st: jitter_factors(mats[st], np.arange(8), 0.2)
            for st in JITTER_STAGES
        }
        flat = np.stack(list(per_stage.values()))
        assert len({tuple(row) for row in flat}) == len(JITTER_STAGES)

    def test_tasks_draw_independently(self):
        a = jitter_factors(jitter_materials(0, "t0")["dev"], np.arange(8), 0.2)
        b = jitter_factors(jitter_materials(0, "t1")["dev"], np.arange(8), 0.2)
        assert not np.array_equal(a, b)


class TestEngineEquivalence:
    def test_zero_noise_is_default(self, small_cluster, small_tasks, solved):
        base = SimulationConfig(horizon_s=8.0, warmup_s=1.0, seed=11)
        explicit = dataclasses.replace(base, service_noise=0.0)
        assert_reports_identical(
            simulate_plan(small_tasks, solved, small_cluster, base),
            simulate_plan(small_tasks, solved, small_cluster, explicit),
        )

    def test_jitter_changes_latencies(self, small_cluster, small_tasks, solved):
        base = SimulationConfig(horizon_s=8.0, warmup_s=1.0, seed=11)
        noisy = dataclasses.replace(base, service_noise=0.25)
        a = simulate_plan(small_tasks, solved, small_cluster, base)
        b = simulate_plan(small_tasks, solved, small_cluster, noisy)
        assert a.records != b.records

    def test_fast_equals_event_loop(self, small_cluster, small_tasks, solved):
        cfg = SimulationConfig(
            horizon_s=8.0, warmup_s=1.0, seed=11, service_noise=0.25
        )
        fast = simulate_plan(small_tasks, solved, small_cluster, cfg)
        event = simulate_plan(
            small_tasks, solved, small_cluster,
            dataclasses.replace(cfg, fast_path=False),
        )
        assert_reports_identical(fast, event)

    @pytest.mark.parametrize("chunk", [7, 64])
    def test_streaming_equals_oneshot(
        self, small_cluster, small_tasks, solved, chunk
    ):
        cfg = SimulationConfig(
            horizon_s=8.0, warmup_s=1.0, seed=11, service_noise=0.25
        )
        one = simulate_plan(small_tasks, solved, small_cluster, cfg)
        stream = simulate_plan(
            small_tasks, solved, small_cluster,
            dataclasses.replace(cfg, streaming=True, chunk_size=chunk),
        )
        assert stream.counters == one.counters
        assert stream.mean_latency_s == one.mean_latency_s
        assert stream.miss_rate == one.miss_rate
        assert stream.accuracy == one.accuracy

    def test_faults_runtime_jitter_smoke(self, small_cluster, small_tasks, solved):
        from repro.faults.schedule import FaultSchedule

        target = small_cluster.servers[0].name
        cfg = SimulationConfig(
            horizon_s=8.0, warmup_s=1.0, seed=11, service_noise=0.25,
            faults=FaultSchedule.crash_recover(target, 3.0, 2.0),
        )
        noisy = simulate_plan(small_tasks, solved, small_cluster, cfg)
        plain = simulate_plan(
            small_tasks, solved, small_cluster,
            dataclasses.replace(cfg, service_noise=0.0),
        )
        assert noisy.counters.requests > 0
        # jitter perturbs the fault run too (same counter-based draws)
        assert noisy.records != plain.records
