"""Deterministic replication fan-out: serial == parallel, rep 0 == plain run."""

import dataclasses

import pytest

from repro.core.joint import JointOptimizer
from repro.errors import ConfigError
from repro.sim.metrics import merge_reports
from repro.sim.runner import SimulationConfig, run_replications, simulate_plan


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


def assert_reports_identical(a, b):
    assert a.records == b.records
    assert a.utilizations == b.utilizations
    assert a.discarded_warmup == b.discarded_warmup
    assert a.counters == b.counters


@pytest.fixture(scope="module")
def base_cfg():
    return SimulationConfig(horizon_s=6.0, warmup_s=0.5, seed=21, replications=3)


class TestReplications:
    def test_serial_equals_parallel(self, small_cluster, small_tasks, solved, base_cfg):
        serial = run_replications(small_tasks, solved, small_cluster, base_cfg)
        parallel = run_replications(
            small_tasks, solved, small_cluster,
            dataclasses.replace(base_cfg, sim_workers=4),
        )
        assert len(serial) == len(parallel) == 3
        for s, p in zip(serial, parallel):
            assert_reports_identical(s, p)

    def test_replication_zero_is_the_plain_run(self, small_cluster, small_tasks, solved, base_cfg):
        reps = run_replications(small_tasks, solved, small_cluster, base_cfg)
        plain = simulate_plan(
            small_tasks, solved, small_cluster,
            dataclasses.replace(base_cfg, replications=1),
        )
        assert_reports_identical(reps[0], plain)

    def test_replications_differ_from_each_other(self, small_cluster, small_tasks, solved, base_cfg):
        reps = run_replications(small_tasks, solved, small_cluster, base_cfg)
        assert reps[0].records != reps[1].records  # independent seed streams

    def test_merged_report(self, small_cluster, small_tasks, solved, base_cfg):
        reps = run_replications(small_tasks, solved, small_cluster, base_cfg)
        merged = merge_reports(reps)
        assert merged.total_requests == sum(r.total_requests for r in reps)
        assert merged.counters.replications == 3
        assert merged.counters.events == sum(r.counters.events for r in reps)
        # records keep replication order, so serial/parallel merges are equal
        assert merged.records[: reps[0].total_requests] == reps[0].records

    def test_event_loop_replications_match_fast(self, small_cluster, small_tasks, solved, base_cfg):
        fast = run_replications(small_tasks, solved, small_cluster, base_cfg)
        event = run_replications(
            small_tasks, solved, small_cluster,
            dataclasses.replace(base_cfg, fast_path=False),
        )
        for f, e in zip(fast, event):
            assert_reports_identical(f, e)

    @pytest.mark.parametrize("kwargs", [dict(replications=0), dict(sim_workers=0)])
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            SimulationConfig(**kwargs)
