"""DeviceSpec validation and throughput math."""

import pytest

from repro.devices.device import DEFAULT_EFFICIENCY, DeviceSpec
from repro.errors import ConfigError


def make(**kw):
    base = dict(name="d", kind="end_device", peak_flops=10e9)
    base.update(kw)
    return DeviceSpec(**base)


class TestValidation:
    def test_valid(self):
        assert make().name == "d"

    def test_bad_kind(self):
        with pytest.raises(ConfigError):
            make(kind="toaster")

    def test_nonpositive_peak(self):
        with pytest.raises(ConfigError):
            make(peak_flops=0)

    def test_negative_overhead(self):
        with pytest.raises(ConfigError):
            make(overhead_s=-1e-3)

    def test_efficiency_must_cover_all_classes(self):
        with pytest.raises(ConfigError):
            make(efficiency={"conv": 0.5})

    def test_efficiency_range(self):
        eff = dict(DEFAULT_EFFICIENCY)
        eff["conv"] = 1.5
        with pytest.raises(ConfigError):
            make(efficiency=eff)

    def test_busy_below_idle_power(self):
        with pytest.raises(ConfigError):
            make(idle_power_w=10.0, busy_power_w=5.0)


class TestThroughput:
    def test_effective_flops(self):
        d = make()
        assert d.effective_flops("conv") == pytest.approx(10e9 * DEFAULT_EFFICIENCY["conv"])

    def test_effective_flops_unknown_class(self):
        with pytest.raises(ConfigError):
            make().effective_flops("quantum")

    def test_blended_below_best_class(self):
        d = make()
        assert d.blended_flops() < d.effective_flops("conv")

    def test_blended_harmonic(self):
        d = make()
        mix = {"conv": 0.5, "dense": 0.5}
        expected = 1.0 / (
            0.5 / d.effective_flops("conv") + 0.5 / d.effective_flops("dense")
        )
        assert d.blended_flops(mix) == pytest.approx(expected)

    def test_blended_empty_mix_raises(self):
        with pytest.raises(ConfigError):
            make().blended_flops({"conv": 0.0})

    def test_is_server(self):
        assert not make().is_server()
        assert make(kind="server").is_server()
