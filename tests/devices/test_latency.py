"""LatencyModel: segment and per-layer predictions."""

import numpy as np
import pytest

from repro.devices.latency import LatencyModel, layer_class_of
from repro.errors import ConfigError
from repro.models.layers import Activation, Conv2D, Dense, DepthwiseConv2D, Pool


class TestSegmentTime:
    def test_linear_in_flops(self, pi4, latency_model):
        t1 = latency_model.segment_time(1e9, pi4)
        t2 = latency_model.segment_time(2e9, pi4)
        # both include the same fixed overhead
        assert t2 - t1 == pytest.approx(t1 - pi4.overhead_s)

    def test_zero_flops_zero_time(self, pi4, latency_model):
        assert latency_model.segment_time(0, pi4) == 0.0

    def test_share_scales_compute(self, pi4, latency_model):
        t_full = latency_model.segment_time(1e9, pi4, share=1.0)
        t_half = latency_model.segment_time(1e9, pi4, share=0.5)
        assert (t_half - pi4.overhead_s) == pytest.approx(2 * (t_full - pi4.overhead_s))

    def test_invalid_share(self, pi4, latency_model):
        with pytest.raises(ConfigError):
            latency_model.segment_time(1e9, pi4, share=0.0)
        with pytest.raises(ConfigError):
            latency_model.segment_time(1e9, pi4, share=1.5)

    def test_negative_flops(self, pi4, latency_model):
        with pytest.raises(ConfigError):
            latency_model.segment_time(-1, pi4)

    def test_vectorized_matches_scalar(self, pi4, latency_model):
        flops = np.array([0.0, 1e8, 5e9])
        vec = latency_model.segment_time_vec(flops, pi4)
        for f, v in zip(flops, vec):
            assert v == pytest.approx(latency_model.segment_time(float(f), pi4))

    def test_faster_device_lower_latency(self, pi4, edge_gpu, latency_model):
        assert latency_model.segment_time(1e9, edge_gpu) < latency_model.segment_time(
            1e9, pi4
        )


class TestLayerTime:
    def test_layer_class_mapping(self):
        assert layer_class_of(Conv2D("c", out_channels=2)) == "conv"
        assert layer_class_of(DepthwiseConv2D("d")) == "depthwise"
        assert layer_class_of(Dense("f", out_features=2)) == "dense"
        assert layer_class_of(Activation("a")) == "memory"
        assert layer_class_of(Pool("p")) == "memory"

    def test_depthwise_slower_per_flop_than_conv(self, pi4, latency_model):
        conv = Conv2D("c", out_channels=2)
        dw = DepthwiseConv2D("d")
        assert latency_model.layer_time(dw, 1e9, pi4) > latency_model.layer_time(
            conv, 1e9, pi4
        )

    def test_zero_flops(self, pi4, latency_model):
        assert latency_model.layer_time(Activation("a"), 0, pi4) == 0.0

    def test_no_overhead_per_layer(self, pi4, latency_model):
        conv = Conv2D("c", out_channels=2)
        t = latency_model.layer_time(conv, 1e6, pi4)
        assert t == pytest.approx(1e6 / pi4.effective_flops("conv"))

    def test_throughput_share(self, pi4, latency_model):
        assert latency_model.throughput(pi4, 0.25) == pytest.approx(
            latency_model.throughput(pi4) * 0.25
        )
