"""Device presets and heterogeneous server generation."""

import numpy as np
import pytest

from repro.devices.presets import (
    DEVICE_PRESETS,
    SERVER_PRESETS,
    device_preset,
    heterogeneous_servers,
)
from repro.errors import ConfigError


class TestPresets:
    def test_all_end_devices_typed(self):
        for d in DEVICE_PRESETS.values():
            assert d.kind == "end_device"

    def test_all_servers_typed(self):
        for s in SERVER_PRESETS.values():
            assert s.kind == "server"

    def test_lookup_both_kinds(self):
        assert device_preset("raspberry_pi4").name == "raspberry_pi4"
        assert device_preset("edge_gpu").name == "edge_gpu"

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            device_preset("cray")

    def test_capability_ordering(self):
        assert (
            DEVICE_PRESETS["raspberry_pi3"].peak_flops
            < DEVICE_PRESETS["raspberry_pi4"].peak_flops
            < DEVICE_PRESETS["jetson_nano"].peak_flops
        )
        assert SERVER_PRESETS["edge_cpu"].peak_flops < SERVER_PRESETS["edge_gpu"].peak_flops


class TestHeterogeneousServers:
    def test_count_and_kind(self):
        servers = heterogeneous_servers(4, spread=4.0, seed=0)
        assert len(servers) == 4
        assert all(s.is_server() for s in servers)

    def test_spread_controls_ratio(self):
        servers = heterogeneous_servers(4, spread=8.0, seed=0)
        flops = sorted(s.peak_flops for s in servers)
        ratio = flops[-1] / flops[0]
        assert 4.0 < ratio < 16.0  # ~spread, with jitter

    def test_homogeneous_at_spread_one(self):
        servers = heterogeneous_servers(4, spread=1.0, seed=0)
        flops = np.array([s.peak_flops for s in servers])
        assert flops.max() / flops.min() < 1.3  # jitter only

    def test_unique_names(self):
        servers = heterogeneous_servers(5, seed=0)
        assert len({s.name for s in servers}) == 5

    def test_deterministic_given_seed(self):
        a = heterogeneous_servers(3, spread=4.0, seed=42)
        b = heterogeneous_servers(3, spread=4.0, seed=42)
        assert [s.peak_flops for s in a] == [s.peak_flops for s in b]

    def test_invalid_args(self):
        with pytest.raises(ConfigError):
            heterogeneous_servers(0)
        with pytest.raises(ConfigError):
            heterogeneous_servers(2, spread=0.5)
