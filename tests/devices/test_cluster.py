"""EdgeCluster wiring and validation."""

import dataclasses

import pytest

from repro.devices.cluster import EdgeCluster
from repro.devices.presets import SERVER_PRESETS, device_preset
from repro.errors import ConfigError
from repro.network.link import Link
from repro.units import mbps


class TestConstruction:
    def test_star_builds(self, small_cluster):
        assert small_cluster.num_devices == 2
        assert small_cluster.num_servers == 2

    def test_by_name(self, small_cluster):
        assert small_cluster.by_name("dev0").kind == "end_device"
        assert small_cluster.by_name("srv_gpu").kind == "server"

    def test_by_name_unknown(self, small_cluster):
        with pytest.raises(ConfigError):
            small_cluster.by_name("nope")

    def test_link_lookup(self, small_cluster):
        link = small_cluster.link("dev0", "srv_cpu")
        assert link.bandwidth_bps == pytest.approx(mbps(40))

    def test_server_index(self, small_cluster):
        assert small_cluster.server_index("srv_cpu") == 0
        assert small_cluster.server_index("srv_gpu") == 1
        with pytest.raises(ConfigError):
            small_cluster.server_index("nope")

    def test_per_server_scale(self, pi4):
        servers = [dataclasses.replace(SERVER_PRESETS["edge_cpu"], name="s0")]
        c = EdgeCluster.star(
            [pi4], servers, Link(mbps(10)), per_server_scale={"s0": 0.5}
        )
        assert c.link(pi4.name, "s0").bandwidth_bps == pytest.approx(mbps(5))


class TestValidation:
    def test_requires_devices(self):
        servers = [SERVER_PRESETS["edge_cpu"]]
        with pytest.raises(ConfigError):
            EdgeCluster.star([], servers, Link(mbps(10)))

    def test_requires_servers(self, pi4):
        with pytest.raises(ConfigError):
            EdgeCluster.star([pi4], [], Link(mbps(10)))

    def test_rejects_server_in_devices(self, pi4):
        srv = SERVER_PRESETS["edge_cpu"]
        with pytest.raises(ConfigError):
            EdgeCluster.star([srv], [srv], Link(mbps(10)))

    def test_rejects_device_in_servers(self, pi4):
        with pytest.raises(ConfigError):
            EdgeCluster.star([pi4], [pi4], Link(mbps(10)))

    def test_duplicate_names(self, pi4):
        srv = SERVER_PRESETS["edge_cpu"]
        with pytest.raises(ConfigError):
            EdgeCluster.star([pi4, pi4], [srv], Link(mbps(10)))

    def test_with_topology_replaces(self, small_cluster):
        topo = small_cluster.topology.scale_all(2.0)
        c2 = small_cluster.with_topology(topo)
        assert c2.link("dev0", "srv_cpu").bandwidth_bps == pytest.approx(
            2 * small_cluster.link("dev0", "srv_cpu").bandwidth_bps
        )
