"""Energy model accounting."""

import pytest

from repro.devices.energy import EnergyModel
from repro.errors import ConfigError

EM = EnergyModel()


class TestDeviceEnergy:
    def test_breakdown_totals(self, pi4):
        e = EM.device_energy(pi4, compute_s=1.0, tx_s=0.5, wait_s=0.2)
        assert e.total_j == pytest.approx(e.compute_j + e.tx_j + e.idle_wait_j)

    def test_compute_uses_busy_power(self, pi4):
        e = EM.device_energy(pi4, compute_s=2.0, tx_s=0.0, wait_s=0.0)
        assert e.compute_j == pytest.approx(2.0 * pi4.busy_power_w)

    def test_tx_adds_radio_power(self, pi4):
        e = EM.device_energy(pi4, compute_s=0.0, tx_s=1.0, wait_s=0.0)
        assert e.tx_j == pytest.approx(pi4.idle_power_w + pi4.tx_power_w)

    def test_wait_uses_idle_power(self, pi4):
        e = EM.device_energy(pi4, compute_s=0.0, tx_s=0.0, wait_s=3.0)
        assert e.idle_wait_j == pytest.approx(3.0 * pi4.idle_power_w)

    def test_negative_duration_raises(self, pi4):
        with pytest.raises(ConfigError):
            EM.device_energy(pi4, compute_s=-1.0, tx_s=0.0, wait_s=0.0)


class TestServerEnergy:
    def test_scales_with_share(self, edge_gpu):
        half = EM.server_energy(edge_gpu, compute_s=1.0, share=0.5)
        full = EM.server_energy(edge_gpu, compute_s=1.0, share=1.0)
        assert half == pytest.approx(full / 2)

    def test_zero_compute_zero_energy(self, edge_gpu):
        assert EM.server_energy(edge_gpu, compute_s=0.0) == 0.0

    def test_invalid_share(self, edge_gpu):
        with pytest.raises(ConfigError):
            EM.server_energy(edge_gpu, compute_s=1.0, share=0.0)

    def test_negative_compute_raises(self, edge_gpu):
        with pytest.raises(ConfigError):
            EM.server_energy(edge_gpu, compute_s=-0.1)
