"""Profiler and profile tables."""

import pytest

from repro.errors import ProfileError
from repro.profiling.profiler import profile_model
from repro.profiling.tables import LayerProfile, ProfileTable


class TestProfileModel:
    def test_row_per_layer(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        assert len(table.rows) == tiny_model.num_layers

    def test_total_flops_match_model(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        assert table.total_flops == tiny_model.total_flops

    def test_faster_device_faster_profile(self, tiny_model, pi4, edge_gpu):
        slow = profile_model(tiny_model, pi4)
        fast = profile_model(tiny_model, edge_gpu)
        assert fast.total_latency_s < slow.total_latency_s

    def test_noise_perturbs_deterministically(self, tiny_model, pi4):
        a = profile_model(tiny_model, pi4, noise=0.1, seed=1)
        b = profile_model(tiny_model, pi4, noise=0.1, seed=1)
        c = profile_model(tiny_model, pi4, noise=0.1, seed=2)
        assert a.latencies().tolist() == b.latencies().tolist()
        assert a.latencies().tolist() != c.latencies().tolist()

    def test_noiseless_is_exact(self, tiny_model, pi4, latency_model):
        table = profile_model(tiny_model, pi4)
        conv = next(r for r in table.rows if r.layer_name == "conv1")
        expected = tiny_model.flops_of("conv1") / pi4.effective_flops("conv")
        assert conv.latency_s == pytest.approx(expected)

    def test_by_class_sums_to_total(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        assert sum(table.by_class().values()) == pytest.approx(table.total_latency_s)

    def test_summary_lists_top_layers(self, tiny_model, pi4):
        s = profile_model(tiny_model, pi4).summary(top=3)
        assert "conv" in s


class TestTableValidation:
    def test_empty_table_raises(self):
        with pytest.raises(ProfileError):
            ProfileTable("m", "d", [])

    def test_negative_entry_raises(self):
        with pytest.raises(ProfileError):
            LayerProfile("l", "Conv2D", "conv", flops=-1, output_bytes=0, latency_s=0.0)
