"""Profiler and profile tables."""

import pytest

from repro.errors import ProfileError
from repro.profiling.profiler import profile_model
from repro.profiling.tables import LayerProfile, ProfileTable


class TestProfileModel:
    def test_row_per_layer(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        assert len(table.rows) == tiny_model.num_layers

    def test_total_flops_match_model(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        assert table.total_flops == tiny_model.total_flops

    def test_faster_device_faster_profile(self, tiny_model, pi4, edge_gpu):
        slow = profile_model(tiny_model, pi4)
        fast = profile_model(tiny_model, edge_gpu)
        assert fast.total_latency_s < slow.total_latency_s

    def test_noise_perturbs_deterministically(self, tiny_model, pi4):
        a = profile_model(tiny_model, pi4, noise=0.1, seed=1)
        b = profile_model(tiny_model, pi4, noise=0.1, seed=1)
        c = profile_model(tiny_model, pi4, noise=0.1, seed=2)
        assert a.latencies().tolist() == b.latencies().tolist()
        assert a.latencies().tolist() != c.latencies().tolist()

    def test_noiseless_is_exact(self, tiny_model, pi4, latency_model):
        table = profile_model(tiny_model, pi4)
        conv = next(r for r in table.rows if r.layer_name == "conv1")
        expected = tiny_model.flops_of("conv1") / pi4.effective_flops("conv")
        assert conv.latency_s == pytest.approx(expected)

    def test_by_class_sums_to_total(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        assert sum(table.by_class().values()) == pytest.approx(table.total_latency_s)

    def test_summary_lists_top_layers(self, tiny_model, pi4):
        s = profile_model(tiny_model, pi4).summary(top=3)
        assert "conv" in s


class TestMeasurementVariance:
    def test_noise_free_has_zero_variance(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        assert table.total_latency_var_s2 == 0.0
        assert table.latency_vars().tolist() == [0.0] * len(table.rows)

    def test_single_measurement_analytic_variance(self, tiny_model, pi4):
        import math

        noise = 0.1
        clean = profile_model(tiny_model, pi4)
        noisy = profile_model(tiny_model, pi4, noise=noise, seed=0)
        e = math.exp(noise**2)
        for c, n in zip(clean.rows, noisy.rows):
            expected = c.latency_s**2 * e * (e - 1.0)
            assert n.latency_var_s2 == pytest.approx(expected)

    def test_repeats_sample_variance(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4, noise=0.1, seed=0, repeats=8)
        assert all(r.latency_var_s2 > 0 for r in table.rows if r.latency_s > 0)

    def test_repeats_preserve_determinism(self, tiny_model, pi4):
        a = profile_model(tiny_model, pi4, noise=0.1, seed=3, repeats=5)
        b = profile_model(tiny_model, pi4, noise=0.1, seed=3, repeats=5)
        assert a.latencies().tolist() == b.latencies().tolist()
        assert a.latency_vars().tolist() == b.latency_vars().tolist()

    def test_single_draw_unchanged_by_repeats_path(self, tiny_model, pi4):
        # repeats=1 must keep the historical draw order: same latencies as
        # the pre-variance profiler produced for this (noise, seed)
        a = profile_model(tiny_model, pi4, noise=0.1, seed=1)
        b = profile_model(tiny_model, pi4, noise=0.1, seed=1, repeats=1)
        assert a.latencies().tolist() == b.latencies().tolist()

    def test_bad_repeats(self, tiny_model, pi4):
        with pytest.raises(ProfileError):
            profile_model(tiny_model, pi4, repeats=0)

    def test_service_noise_roundtrip(self, tiny_model, pi4):
        from repro.core.risk import profile_service_noise

        assert profile_service_noise(profile_model(tiny_model, pi4)) == 0.0
        est = profile_service_noise(
            profile_model(tiny_model, pi4, noise=0.1, seed=0, repeats=16)
        )
        assert est > 0


class TestTableValidation:
    def test_empty_table_raises(self):
        with pytest.raises(ProfileError):
            ProfileTable("m", "d", [])

    def test_negative_variance_rejected(self):
        with pytest.raises(ProfileError):
            LayerProfile("l", "Conv2D", "conv", 10, 4, 1e-3, latency_var_s2=-1.0)

    def test_negative_entry_raises(self):
        with pytest.raises(ProfileError):
            LayerProfile("l", "Conv2D", "conv", flops=-1, output_bytes=0, latency_s=0.0)
