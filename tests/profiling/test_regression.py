"""Latency regression fits."""

import pytest

from repro.errors import ProfileError
from repro.profiling.profiler import profile_model
from repro.profiling.regression import fit_latency_regression
from repro.profiling.tables import LayerProfile, ProfileTable


class TestFit:
    def test_noiseless_fit_is_near_perfect(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        reg = fit_latency_regression(table)
        for cls, r2 in reg.r2.items():
            assert r2 > 0.99, cls

    def test_predictions_recover_latency(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4)
        reg = fit_latency_regression(table)
        for r in table.rows:
            if r.flops > 0:
                assert reg.predict(r.layer_class, r.flops) == pytest.approx(
                    r.latency_s, rel=0.05
                )

    def test_noisy_fit_reasonable(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4, noise=0.05, seed=3)
        reg = fit_latency_regression(table)
        conv = [r for r in table.rows if r.layer_class == "conv"]
        for r in conv:
            assert reg.predict("conv", r.flops) == pytest.approx(r.latency_s, rel=0.3)

    def test_predict_unknown_class_raises(self, tiny_model, pi4):
        reg = fit_latency_regression(profile_model(tiny_model, pi4))
        with pytest.raises(ProfileError):
            reg.predict("hologram", 1e6)

    def test_predictions_nonnegative(self, tiny_model, pi4):
        reg = fit_latency_regression(profile_model(tiny_model, pi4))
        for cls in reg.coefficients:
            assert reg.predict(cls, 1.0) >= 0.0

    def test_single_sample_class(self):
        rows = [
            LayerProfile("a", "Dense", "dense", flops=1000, output_bytes=4, latency_s=1e-3),
        ]
        reg = fit_latency_regression(ProfileTable("m", "d", rows))
        assert reg.predict("dense", 2000) == pytest.approx(2e-3)

    def test_all_zero_flops_raises(self):
        rows = [LayerProfile("a", "Flatten", "memory", flops=0, output_bytes=4, latency_s=0.0)]
        with pytest.raises(ProfileError):
            fit_latency_regression(ProfileTable("m", "d", rows))


class TestRelStd:
    def test_noise_free_rel_std_zero(self, tiny_model, pi4):
        reg = fit_latency_regression(profile_model(tiny_model, pi4))
        for cls in reg.coefficients:
            assert reg.rel_std.get(cls, 0.0) == 0.0
            assert reg.predict_std(cls, 1e6) == 0.0

    def test_noisy_rel_std_positive(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4, noise=0.1, seed=0, repeats=8)
        reg = fit_latency_regression(table)
        assert any(s > 0 for s in reg.rel_std.values())

    def test_predict_var_is_std_squared(self, tiny_model, pi4):
        table = profile_model(tiny_model, pi4, noise=0.1, seed=0, repeats=8)
        reg = fit_latency_regression(table)
        for r in table.rows:
            if r.flops > 0:
                std = reg.predict_std(r.layer_class, r.flops)
                assert reg.predict_var(r.layer_class, r.flops) == pytest.approx(std**2)
