"""Shared fixtures.

Expensive artifacts (zoo graphs, multi-exit transforms, candidate sets) are
session-scoped: they are deterministic and immutable, so sharing them across
tests only saves time.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.candidates import build_candidates
from repro.core.plan import TaskSpec
from repro.devices.cluster import EdgeCluster
from repro.devices.latency import LatencyModel
from repro.devices.presets import SERVER_PRESETS, device_preset
from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Conv2D,
    Dense,
    Flatten,
    Input,
    Pool,
    Softmax,
)
from repro.network.link import Link
from repro.units import mbps
from repro.workloads.scenarios import multiexit_model


@pytest.fixture(scope="session")
def tiny_model() -> ModelGraph:
    """A small, fast-to-build chain CNN used by unit tests."""
    return ModelGraph.chain(
        "tiny",
        [
            Input("input", shape=(3, 32, 32)),
            Conv2D("conv1", out_channels=8, kernel=3, padding=1),
            Activation("relu1"),
            Pool("pool1", kernel=2, stride=2),
            Conv2D("conv2", out_channels=16, kernel=3, padding=1),
            Activation("relu2"),
            Pool("pool2", kernel=2, stride=2),
            Flatten("flatten"),
            Dense("fc", out_features=10),
            Softmax("softmax"),
        ],
    )


@pytest.fixture(scope="session")
def me_resnet18():
    """Multi-exit ResNet-18 (cached by the workloads layer)."""
    return multiexit_model("resnet18", 4, "mixed")


@pytest.fixture(scope="session")
def me_alexnet():
    return multiexit_model("alexnet", 3, "easy")


@pytest.fixture(scope="session")
def pi4():
    return device_preset("raspberry_pi4")


@pytest.fixture(scope="session")
def edge_gpu():
    return SERVER_PRESETS["edge_gpu"]


@pytest.fixture(scope="session")
def latency_model():
    return LatencyModel()


@pytest.fixture(scope="session")
def small_cluster(pi4):
    """2 Pi-class devices, 1 CPU + 1 GPU server, 40 Mbps star."""
    devices = [dataclasses.replace(pi4, name=f"dev{i}") for i in range(2)]
    servers = [
        dataclasses.replace(SERVER_PRESETS["edge_cpu"], name="srv_cpu"),
        dataclasses.replace(SERVER_PRESETS["edge_gpu"], name="srv_gpu"),
    ]
    return EdgeCluster.star(devices, servers, Link(mbps(40), rtt_s=10e-3))


@pytest.fixture(scope="session")
def small_tasks(me_resnet18, me_alexnet):
    return [
        TaskSpec("t0", me_resnet18, "dev0", deadline_s=0.2, accuracy_floor=0.6, arrival_rate=3.0),
        TaskSpec("t1", me_alexnet, "dev1", deadline_s=0.25, accuracy_floor=0.5, arrival_rate=2.0),
    ]


@pytest.fixture(scope="session")
def small_candidates(small_tasks):
    return [build_candidates(t) for t in small_tasks]
