"""The failure-aware runtime end to end: config gating, the recovery
ladder, conservation, and deterministic replay."""

import dataclasses
import math

import pytest

from repro.errors import ConfigError
from repro.faults import FailurePolicy, FaultEvent, FaultSchedule, PlanUpdate
from repro.sim import SimulationConfig, simulate_plan
from repro.sim.runner import run_replications


def _crash_cfg(server, crash_s=3.0, down_s=4.0, horizon_s=12.0, **kw):
    return SimulationConfig(
        horizon_s=horizon_s, warmup_s=0.0, seed=0,
        faults=FaultSchedule.crash_recover(server, crash_s, down_s), **kw
    )


def _reports_equal(a, b):
    return (
        a.records == b.records
        and a.utilizations == b.utilizations
        and a.counters == b.counters
    )


class TestConfigGating:
    def test_policy_without_faults_rejected(self):
        with pytest.raises(ConfigError, match="requires a fault schedule"):
            SimulationConfig(failure_policy=FailurePolicy())

    def test_fault_beyond_horizon_rejected(self):
        with pytest.raises(ConfigError, match="beyond the horizon"):
            SimulationConfig(
                horizon_s=5.0, faults=FaultSchedule.crash_recover("s", 5.0, 1.0)
            )

    def test_plan_updates_require_faults(
        self, small_tasks, small_plan, small_cluster
    ):
        cfg = SimulationConfig(horizon_s=5.0, warmup_s=0.0)
        with pytest.raises(ConfigError, match="plan_updates"):
            simulate_plan(
                small_tasks, small_plan, small_cluster, cfg,
                plan_updates=[PlanUpdate(1.0, small_plan)],
            )

    def test_faultfree_run_reports_zero_failure_counters(
        self, small_tasks, small_plan, small_cluster
    ):
        rep = simulate_plan(
            small_tasks, small_plan, small_cluster,
            SimulationConfig(horizon_s=5.0, warmup_s=0.0, seed=0),
        )
        c = rep.counters
        assert (c.faults_injected, c.lost, c.shed, c.retries, c.failovers,
                c.degraded_completions) == (0, 0, 0, 0, 0, 0)
        assert c.conserved()


class TestRecoveryDemonstration:
    """The acceptance scenario: a mid-run crash strands in-flight requests."""

    def test_no_policy_loses_stranded_requests(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        rep = simulate_plan(small_tasks, small_plan, small_cluster, _crash_cfg(server))
        assert rep.counters.faults_injected == 1
        assert rep.counters.lost > 0
        assert rep.counters.conserved()

    def test_policy_completes_every_request(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        cfg = _crash_cfg(server, failure_policy=FailurePolicy())
        rep = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        c = rep.counters
        assert c.lost == 0 and c.shed == 0
        # every launched request is in the report (warmup_s=0: none discarded)
        assert c.records == c.requests
        assert c.retries + c.failovers + c.degraded_completions > 0
        assert c.conserved()

    def test_recovery_restores_nominal_latency(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        """Requests arriving well after recovery look like fault-free ones."""
        _, server = offload_target
        cfg = _crash_cfg(server, crash_s=3.0, down_s=2.0, horizon_s=14.0,
                         failure_policy=FailurePolicy())
        faulty = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        clean = simulate_plan(
            small_tasks, small_plan, small_cluster,
            SimulationConfig(horizon_s=14.0, warmup_s=0.0, seed=0),
        )
        tail = [r.latency_s for r in faulty.records if r.arrival_s > 9.0]
        clean_tail = [r.latency_s for r in clean.records if r.arrival_s > 9.0]
        assert max(tail) < 10 * max(clean_tail)


class TestLadderRungs:
    def test_degradation_when_failover_and_retries_disabled(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        on_server = {
            name for name, idx in small_plan.assignment.items()
            if idx is not None and small_cluster.servers[idx].name == server
        }
        sched = FaultSchedule(
            events=(FaultEvent("server_crash", server, 3.0, math.inf),)
        )
        cfg = SimulationConfig(
            horizon_s=10.0, warmup_s=0.0, seed=0, faults=sched,
            failure_policy=FailurePolicy(max_retries=0, failover=False),
        )
        rep = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        c = rep.counters
        assert c.degraded_completions > 0 and c.lost == 0
        assert c.failovers == 0
        degraded = [r for r in rep.records if r.degraded]
        assert len(degraded) == c.degraded_completions
        assert all(not r.offloaded for r in degraded)
        assert {r.task_name for r in degraded} <= on_server

    def test_lost_when_whole_ladder_disabled(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        sched = FaultSchedule(
            events=(FaultEvent("server_crash", server, 3.0, math.inf),)
        )
        cfg = SimulationConfig(
            horizon_s=10.0, warmup_s=0.0, seed=0, faults=sched,
            failure_policy=FailurePolicy(
                max_retries=0, failover=False, degrade_local=False
            ),
        )
        rep = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        assert rep.counters.lost > 0
        assert rep.counters.degraded_completions == 0
        assert rep.counters.conserved()

    def test_certain_loss_recovered_by_retries(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        task, _ = offload_target
        sched = FaultSchedule(
            events=(FaultEvent("request_loss", task, 2.0, 4.0, 1.0),)
        )
        base = SimulationConfig(
            horizon_s=8.0, warmup_s=0.0, seed=0, faults=sched
        )
        nopolicy = simulate_plan(small_tasks, small_plan, small_cluster, base)
        assert nopolicy.counters.lost > 0
        policy = simulate_plan(
            small_tasks, small_plan, small_cluster,
            dataclasses.replace(base, failure_policy=FailurePolicy()),
        )
        # p=1 loss kills every in-window retry too; degradation must absorb
        assert policy.counters.lost == 0
        assert policy.counters.conserved()

    def test_slowdown_slows_but_loses_nothing(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        sched = FaultSchedule(
            events=(FaultEvent("server_slowdown", server, 2.0, 6.0, 0.25),)
        )
        cfg = SimulationConfig(horizon_s=10.0, warmup_s=0.0, seed=0, faults=sched)
        slow = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        clean = simulate_plan(
            small_tasks, small_plan, small_cluster,
            SimulationConfig(horizon_s=10.0, warmup_s=0.0, seed=0),
        )
        assert slow.counters.lost == 0
        assert slow.counters.records == clean.counters.records
        assert slow.mean_latency_s > clean.mean_latency_s


class TestDeterminism:
    def test_fault_run_replays_bit_identically(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        cfg = _crash_cfg(server, failure_policy=FailurePolicy())
        a = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        b = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        assert _reports_equal(a, b)

    def test_serial_equals_parallel_replications(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        cfg = _crash_cfg(
            server, horizon_s=8.0, failure_policy=FailurePolicy()
        )
        serial = run_replications(
            small_tasks, small_plan, small_cluster,
            dataclasses.replace(cfg, replications=3, sim_workers=1),
        )
        parallel = run_replications(
            small_tasks, small_plan, small_cluster,
            dataclasses.replace(cfg, replications=3, sim_workers=3),
        )
        for a, b in zip(serial, parallel):
            assert _reports_equal(a, b)


class TestPlanRepair:
    def test_shed_tasks_dropped_from_update_onward(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        task, server = offload_target
        cfg = _crash_cfg(server, crash_s=4.0, down_s=7.0,
                         failure_policy=FailurePolicy())
        update = PlanUpdate(4.5, small_plan, shed_tasks=(task,))
        rep = simulate_plan(
            small_tasks, small_plan, small_cluster, cfg, plan_updates=[update]
        )
        c = rep.counters
        assert c.shed > 0
        assert all(
            r.arrival_s < 4.5 for r in rep.records if r.task_name == task
        )
        assert c.conserved()


class TestTelemetry:
    def test_fault_events_in_timeline(
        self, small_tasks, small_plan, small_cluster, offload_target
    ):
        _, server = offload_target
        cfg = _crash_cfg(server, telemetry=True, failure_policy=FailurePolicy())
        rep = simulate_plan(small_tasks, small_plan, small_cluster, cfg)
        kinds = {e.kind for e in rep.timeline.events}
        assert {"fault_inject", "fault_recover"} <= kinds
        # the crash window produced ladder activity of some rung
        assert kinds & {"timeout", "retry", "failover", "degraded"}
        snapshot = rep.registry.snapshot()
        assert "sim.faults.server_crash" in snapshot
