"""Failure policies and plan-repair directives."""

import pytest

from repro.core.joint import JointOptimizer
from repro.errors import ConfigError
from repro.faults import FailurePolicy, PlanUpdate


class TestFailurePolicy:
    def test_defaults_valid(self):
        p = FailurePolicy()
        assert p.stage_timeout_s > 0 and p.max_retries >= 0

    @pytest.mark.parametrize("kw", [
        dict(stage_timeout_s=0.0),
        dict(max_retries=-1),
        dict(backoff_base_s=-0.1),
        dict(backoff_factor=0.5),
        dict(detection_delay_s=-1e-9),
    ])
    def test_bad_knobs_rejected(self, kw):
        with pytest.raises(ConfigError):
            FailurePolicy(**kw)

    def test_backoff_is_exponential(self):
        p = FailurePolicy(backoff_base_s=0.01, backoff_factor=2.0)
        assert p.backoff_s(0) == pytest.approx(0.01)
        assert p.backoff_s(3) == pytest.approx(0.08)


class TestPlanUpdate:
    @pytest.fixture(scope="class")
    def plan(self, small_cluster, small_tasks, small_candidates):
        return JointOptimizer(small_cluster).solve(
            small_tasks, candidates=small_candidates, seed=0
        ).plan

    def test_valid_update(self, plan):
        up = PlanUpdate(3.0, plan, shed_tasks=("t0",))
        assert up.time_s == 3.0 and up.shed_tasks == ("t0",)

    def test_negative_time_rejected(self, plan):
        with pytest.raises(ConfigError):
            PlanUpdate(-1.0, plan)

    def test_unknown_shed_task_rejected(self, plan):
        with pytest.raises(ConfigError, match="shed task"):
            PlanUpdate(1.0, plan, shed_tasks=("ghost",))
