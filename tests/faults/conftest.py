import pytest

from repro.core.joint import JointOptimizer


@pytest.fixture(scope="package")
def small_plan(small_cluster, small_tasks, small_candidates):
    """The small instance's joint plan, solved once for the fault suite."""
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


@pytest.fixture(scope="package")
def offload_target(small_plan, small_cluster):
    """(task_name, server_name) of an offloaded task in the small plan."""
    for name, idx in small_plan.assignment.items():
        if idx is not None:
            return name, small_cluster.servers[idx].name
    pytest.skip("small plan offloads nothing")
