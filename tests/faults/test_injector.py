"""The injector: fault windows become resource state transitions."""

import pytest

from repro.errors import FaultError
from repro.faults import FaultEvent, FaultInjector, FaultSchedule
from repro.sim.engine import Simulator
from repro.sim.metrics import SimCounters
from repro.sim.queues import FifoResource
from repro.telemetry.timeline import TimelineRecorder


def _armed(schedule, res):
    sim = Simulator()
    counters = SimCounters()
    inj = FaultInjector(schedule, {"srv": [res]}, {}, counters)
    inj.arm(sim)
    return sim, counters


class TestCrashWindow:
    def test_down_exactly_during_window(self):
        res = FifoResource("srv:slice", rate=1e9)
        sim, counters = _armed(FaultSchedule.crash_recover("srv", 1.0, 2.0), res)
        observed = {}
        for t in (0.5, 1.0, 2.9, 3.0, 4.0):
            sim.schedule_at(t, lambda t=t: observed.__setitem__(t, res.is_down))
        sim.run()
        # injector transitions outrank same-time probes (armed first)
        assert observed == {0.5: False, 1.0: True, 2.9: True, 3.0: False, 4.0: False}
        assert counters.faults_injected == 1
        assert res.outages == [(1.0, 3.0)]

    def test_slowdown_scales_rate_then_reverts(self):
        res = FifoResource("srv:slice", rate=100.0)
        sched = FaultSchedule(events=(
            FaultEvent("server_slowdown", "srv", 1.0, 2.0, 0.5),
        ))
        sim, _ = _armed(sched, res)
        finishes = {}
        for t in (0.0, 1.0, 3.0):
            sim.schedule_at(
                t, lambda t=t: finishes.__setitem__(t, res.submit(t, 100.0)[1])
            )
        sim.run()
        assert finishes[0.0] == pytest.approx(1.0)      # nominal: 1 s of work
        assert finishes[1.0] == pytest.approx(3.0)      # half speed: 2 s
        assert finishes[3.0] == pytest.approx(4.0)      # reverted

    def test_permanent_fault_never_reverts(self):
        import math

        res = FifoResource("srv:slice", rate=1e9)
        sched = FaultSchedule(events=(
            FaultEvent("server_crash", "srv", 1.0, math.inf),
        ))
        sim, _ = _armed(sched, res)
        sim.run()
        assert res.is_down

    def test_multiple_slices_transition_together(self):
        a, b = FifoResource("a", 1.0), FifoResource("b", 1.0)
        sim = Simulator()
        inj = FaultInjector(
            FaultSchedule.crash_recover("srv", 1.0, 1.0), {"srv": [a, b]}, {},
            SimCounters(),
        )
        inj.arm(sim)
        sim.schedule_at(1.5, lambda: None)
        sim.run(until=1.5)
        assert a.is_down and b.is_down


class TestResolution:
    def test_unknown_server_fails_fast(self):
        with pytest.raises(FaultError, match="unknown server"):
            FaultInjector(
                FaultSchedule.crash_recover("ghost", 1.0, 1.0), {}, {}, SimCounters()
            )

    def test_unknown_link_fails_fast(self):
        sched = FaultSchedule(events=(FaultEvent("link_outage", "t9", 1.0, 2.0),))
        with pytest.raises(FaultError, match="unknown task link"):
            FaultInjector(sched, {}, {"t0": []}, SimCounters())

    def test_request_loss_needs_no_resource(self):
        sched = FaultSchedule(events=(
            FaultEvent("request_loss", "anytask", 1.0, 2.0, 0.5),
        ))
        FaultInjector(sched, {}, {}, SimCounters())  # must not raise


class TestTelemetry:
    def test_inject_and_recover_events_recorded(self):
        res = FifoResource("srv:slice", rate=1e9)
        rec = TimelineRecorder()
        sim = Simulator()
        counters = SimCounters()
        inj = FaultInjector(
            FaultSchedule.crash_recover("srv", 1.0, 1.0), {"srv": [res]}, {},
            counters, recorder=rec,
        )
        inj.arm(sim)
        sim.run()
        kinds = [e.kind for e in rec.timeline.events]
        assert kinds == ["fault_inject", "fault_recover"]
        assert all(e.req_id == -1 for e in rec.timeline.events)
