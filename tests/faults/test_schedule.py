"""Fault schedules: validation, window queries, seeded sampling."""

import math

import pytest

from repro.errors import FaultError
from repro.faults import FAULT_KINDS, FaultEvent, FaultSchedule, sample_fault_schedule


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultError, match="unknown fault kind"):
            FaultEvent("meteor_strike", "srv", 1.0, 2.0)

    def test_empty_target_rejected(self):
        with pytest.raises(FaultError, match="target"):
            FaultEvent("server_crash", "", 1.0, 2.0)

    @pytest.mark.parametrize("start,end", [(2.0, 2.0), (2.0, 1.0), (-1.0, 2.0)])
    def test_bad_window_rejected(self, start, end):
        with pytest.raises(FaultError):
            FaultEvent("server_crash", "srv", start, end)

    @pytest.mark.parametrize("kind", ["server_slowdown", "link_degrade"])
    @pytest.mark.parametrize("severity", [0.0, 1.0, 1.5])
    def test_speed_severity_must_be_fractional(self, kind, severity):
        with pytest.raises(FaultError, match="severity"):
            FaultEvent(kind, "x", 0.0, 1.0, severity)

    def test_loss_severity_range(self):
        FaultEvent("request_loss", "t0", 0.0, 1.0, 1.0)  # p=1 is legal
        with pytest.raises(FaultError):
            FaultEvent("request_loss", "t0", 0.0, 1.0, 0.0)

    def test_permanent(self):
        assert FaultEvent("server_crash", "srv", 1.0, math.inf).permanent
        assert not FaultEvent("server_crash", "srv", 1.0, 2.0).permanent


class TestFaultSchedule:
    def test_events_sorted_by_start(self):
        sched = FaultSchedule(events=(
            FaultEvent("server_crash", "b", 5.0, 6.0),
            FaultEvent("server_crash", "a", 1.0, 2.0),
        ))
        assert [e.start_s for e in sched] == [1.0, 5.0]

    def test_overlap_same_kind_target_rejected(self):
        with pytest.raises(FaultError, match="overlapping"):
            FaultSchedule(events=(
                FaultEvent("server_crash", "srv", 1.0, 3.0),
                FaultEvent("server_crash", "srv", 2.0, 4.0),
            ))

    def test_overlap_allowed_across_kinds_and_targets(self):
        FaultSchedule(events=(
            FaultEvent("server_crash", "srv", 1.0, 3.0),
            FaultEvent("server_slowdown", "srv", 2.0, 4.0, 0.5),
            FaultEvent("server_crash", "other", 2.0, 4.0),
        ))

    def test_window_queries(self):
        sched = FaultSchedule.crash_recover("srv", 2.0, 3.0)
        assert sched.is_down("server_crash", "srv", 2.0)  # closed at start
        assert sched.is_down("server_crash", "srv", 4.999)
        assert not sched.is_down("server_crash", "srv", 5.0)  # open at end
        assert not sched.is_down("server_crash", "other", 3.0)
        assert sched.outage_windows("server_crash", "srv") == [(2.0, 5.0)]

    def test_next_failure_strictly_inside(self):
        sched = FaultSchedule.crash_recover("srv", 2.0, 1.0)
        assert sched.next_failure_in("server_crash", "srv", 1.0, 3.0) == 2.0
        # boundary starts are not "during service"
        assert sched.next_failure_in("server_crash", "srv", 2.0, 3.0) is None
        assert sched.next_failure_in("server_crash", "srv", 0.0, 2.0) is None

    def test_loss_probability_window(self):
        sched = FaultSchedule(events=(
            FaultEvent("request_loss", "t0", 1.0, 2.0, 0.3),
        ))
        assert sched.loss_probability("t0", 1.5) == 0.3
        assert sched.loss_probability("t0", 2.0) == 0.0
        assert sched.loss_probability("t1", 1.5) == 0.0

    def test_merged_with_revalidates(self):
        a = FaultSchedule.crash_recover("srv", 1.0, 2.0)
        b = FaultSchedule.crash_recover("srv", 5.0, 1.0)
        assert len(a.merged_with(b)) == 2
        with pytest.raises(FaultError):
            a.merged_with(FaultSchedule.crash_recover("srv", 2.0, 2.0))

    def test_for_kind_and_targets(self):
        sched = FaultSchedule(events=(
            FaultEvent("server_crash", "srv", 1.0, 2.0),
            FaultEvent("request_loss", "t0", 0.0, 9.0, 0.1),
        ))
        assert len(sched.for_kind("server_crash")) == 1
        assert sched.targets == ("srv", "t0")
        with pytest.raises(FaultError):
            sched.for_kind("nope")


class TestSampling:
    def test_same_seed_same_schedule(self):
        kw = dict(horizon_s=30.0, servers=["s0", "s1"], tasks=["t0"],
                  crash_rate_per_min=6.0, loss_prob=0.1)
        assert sample_fault_schedule(7, **kw) == sample_fault_schedule(7, **kw)
        assert sample_fault_schedule(7, **kw) != sample_fault_schedule(8, **kw)

    def test_sampled_events_valid_and_in_horizon(self):
        sched = sample_fault_schedule(
            3, horizon_s=20.0, servers=["s0", "s1", "s2"], tasks=["t0", "t1"],
            crash_rate_per_min=10.0, slowdown_prob=1.0, loss_prob=0.2,
        )
        assert len(sched) > 0
        for e in sched:
            assert e.kind in FAULT_KINDS
            assert 0.0 <= e.start_s < 20.0

    def test_zero_rates_empty(self):
        sched = sample_fault_schedule(
            0, horizon_s=10.0, servers=["s0"], crash_rate_per_min=0.0,
            slowdown_prob=0.0,
        )
        assert len(sched) == 0

    def test_bad_horizon(self):
        with pytest.raises(FaultError):
            sample_fault_schedule(0, horizon_s=0.0, servers=["s0"])
