"""Admission control."""

import dataclasses

import numpy as np
import pytest

from repro.core.admission import admit_tasks
from repro.errors import ConfigError


class TestAdmitTasks:
    def test_underloaded_admits_all(self, small_cluster, small_tasks, small_candidates):
        relaxed = [dataclasses.replace(t, deadline_s=5.0) for t in small_tasks]
        res = admit_tasks(relaxed, small_cluster, candidates=small_candidates)
        assert len(res.admitted) == len(relaxed)
        assert not res.rejected
        assert res.plan is not None
        assert res.admission_ratio == 1.0

    def test_overloaded_rejects_some(self, small_cluster, small_tasks, small_candidates):
        hot = [
            dataclasses.replace(t, deadline_s=0.02, arrival_rate=30.0)
            for t in small_tasks
        ]
        res = admit_tasks(hot, small_cluster, candidates=small_candidates)
        assert res.rejected  # impossible deadlines force rejections

    def test_admitted_meet_deadlines(self, small_cluster, small_tasks, small_candidates):
        mixed = [
            dataclasses.replace(small_tasks[0], deadline_s=0.5),
            dataclasses.replace(small_tasks[1], deadline_s=0.001),  # impossible
        ]
        res = admit_tasks(mixed, small_cluster, candidates=small_candidates)
        assert res.plan is not None
        for t in res.admitted:
            assert res.plan.latencies[t.name] <= t.deadline_s + 1e-9

    def test_low_weight_rejected_first(self, small_cluster, small_tasks, small_candidates):
        important = dataclasses.replace(
            small_tasks[0], deadline_s=0.002, weight=10.0, name="vip"
        )
        expendable = dataclasses.replace(
            small_tasks[1], deadline_s=0.002, weight=0.1, name="spot"
        )
        res = admit_tasks(
            [important, expendable], small_cluster, candidates=small_candidates
        )
        if res.rejected:
            assert res.rejected[0].name != "vip" or len(res.rejected) == 2

    def test_rejection_log_records_ratios(self, small_cluster, small_tasks, small_candidates):
        hot = [
            dataclasses.replace(t, deadline_s=0.001, arrival_rate=50.0)
            for t in small_tasks
        ]
        res = admit_tasks(hot, small_cluster, candidates=small_candidates)
        assert len(res.rejection_log) == len(res.rejected)
        for name, ratio in res.rejection_log:
            assert ratio > 1.0 or not np.isfinite(ratio)

    def test_margin_tightens_admission(self, small_cluster, small_tasks, small_candidates):
        tasks = [dataclasses.replace(t, deadline_s=0.25) for t in small_tasks]
        loose = admit_tasks(tasks, small_cluster, candidates=small_candidates, margin=1.0)
        tight = admit_tasks(tasks, small_cluster, candidates=small_candidates, margin=0.1)
        assert len(tight.admitted) <= len(loose.admitted)

    def test_terminates_when_nothing_admittable(self, small_cluster, small_tasks, small_candidates):
        impossible = [
            dataclasses.replace(t, deadline_s=1e-6) for t in small_tasks
        ]
        res = admit_tasks(impossible, small_cluster, candidates=small_candidates)
        assert not res.admitted
        assert res.plan is None
        assert res.rounds <= len(impossible)

    def test_empty_tasks_raise(self, small_cluster):
        with pytest.raises(ConfigError):
            admit_tasks([], small_cluster)

    def test_invalid_margin(self, small_cluster, small_tasks, small_candidates):
        with pytest.raises(ConfigError):
            admit_tasks(small_tasks, small_cluster, candidates=small_candidates, margin=0.0)
