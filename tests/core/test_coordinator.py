"""The hierarchical coordinator: shard solves + cross-shard migration."""

import dataclasses

import numpy as np
import pytest

from repro.core.candidates import build_candidates
from repro.core.coordinator import ShardedResult, solve_sharded
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.errors import ConfigError
from repro.workloads.scenarios import build_scenario


@pytest.fixture(scope="module")
def medium_instance():
    cluster, tasks = build_scenario("smart_city", num_tasks=24, num_servers=4, seed=3)
    return cluster, tasks, [build_candidates(t) for t in tasks]


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shards=0),
            dict(shards=-1),
            dict(shard_by="hash"),
            dict(migration_rounds=-1),
            dict(migration_hysteresis=-0.5),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            JointSolverConfig(**kwargs)

    def test_more_shards_than_servers_rejected_at_solve(self, medium_instance):
        cluster, tasks, cands = medium_instance
        cfg = JointSolverConfig(shards=cluster.num_servers + 1)
        with pytest.raises(ConfigError):
            JointOptimizer(cluster, config=cfg).solve(tasks, candidates=cands)


class TestSingleShardIdentity:
    def test_bit_identical_to_centralized(self, medium_instance):
        # JointOptimizer keeps shards=1 on the centralized path; calling the
        # coordinator directly exercises its degenerate early return
        cluster, tasks, cands = medium_instance
        cen = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=7)
        one = solve_sharded(
            tasks, cluster, config=JointSolverConfig(shards=1),
            candidates=cands, seed=7,
        )
        assert isinstance(one, ShardedResult)
        assert one.plan.assignment == cen.plan.assignment
        assert one.plan.features == cen.plan.features
        assert one.plan.latencies == cen.plan.latencies
        assert one.plan.compute_shares == cen.plan.compute_shares
        assert one.plan.bandwidth_shares == cen.plan.bandwidth_shares
        assert one.plan.objective_value == cen.plan.objective_value
        assert one.history == cen.history
        assert one.iterations == cen.iterations
        assert one.migration_history == []


class TestShardedSolve:
    @pytest.fixture(scope="class")
    def result(self, medium_instance):
        cluster, tasks, cands = medium_instance
        cfg = JointSolverConfig(shards=2, migration_rounds=3)
        return solve_sharded(
            tasks, cluster, config=cfg, candidates=cands, seed=7
        )

    def test_complete_plan(self, medium_instance, result):
        _, tasks, _ = medium_instance
        for t in tasks:
            assert t.name in result.plan.latencies
            assert np.isfinite(result.plan.latencies[t.name])

    def test_shard_stats_cover_all_tasks(self, medium_instance, result):
        _, tasks, _ = medium_instance
        assert len(result.shard_stats) == 2
        assert sum(st.num_tasks for st in result.shard_stats) == len(tasks)

    def test_counters(self, result):
        assert result.perf.shard_solves == 2
        assert result.perf.migration_rounds == len(result.migration_history)
        assert result.perf.migrations == sum(result.migration_history)

    def test_final_homing_matches_assignment(self, medium_instance, result):
        # after migration, every offloaded task's homing shard owns the
        # server it is assigned to
        cluster, tasks, _ = medium_instance
        plan = result.shard_plan
        for i, t in enumerate(tasks):
            s = result.plan.assignment[t.name]  # global server index or None
            if s is not None:
                assert plan.shard_of_server(s) == plan.task_shard[i]

    def test_migration_improves_or_holds(self, result):
        # history[0] is the stitched objective before migration
        assert result.history[-1] <= result.history[0] + 1e-12

    def test_deterministic(self, medium_instance, result):
        cluster, tasks, cands = medium_instance
        again = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=3),
            candidates=cands, seed=7,
        )
        assert again.plan.assignment == result.plan.assignment
        assert again.plan.latencies == result.plan.latencies
        assert again.migration_history == result.migration_history
        assert again.history == result.history

    def test_serial_parallel_fanout_identical(self, medium_instance, result):
        cluster, tasks, cands = medium_instance
        par = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(
                shards=2, migration_rounds=3, restart_workers=4
            ),
            candidates=cands, seed=7,
        )
        assert par.plan.assignment == result.plan.assignment
        assert par.plan.latencies == result.plan.latencies
        assert par.plan.objective_value == result.plan.objective_value
        assert par.migration_history == result.migration_history

    def test_seed_changes_solution_space_not_validity(self, medium_instance):
        cluster, tasks, cands = medium_instance
        cfg = JointSolverConfig(shards=2, migration_rounds=1)
        other = solve_sharded(tasks, cluster, config=cfg, candidates=cands, seed=11)
        for t in tasks:
            assert np.isfinite(other.plan.latencies[t.name])


class TestMigration:
    def test_zero_rounds_skips_migration(self, medium_instance):
        cluster, tasks, cands = medium_instance
        res = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=0),
            candidates=cands, seed=7,
        )
        assert res.migration_history == []
        assert res.perf.migrations == 0
        assert res.shard_plan.task_shard == tuple(res.shard_plan.task_shard)

    def test_migration_strictly_helps_here(self, medium_instance):
        # on this instance the partition leaves cross-shard gains on the
        # table; the coordinator should find at least one
        cluster, tasks, cands = medium_instance
        without = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=0),
            candidates=cands, seed=7,
        )
        with_mig = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=3),
            candidates=cands, seed=7,
        )
        assert with_mig.perf.migrations > 0
        assert (
            with_mig.plan.objective_value <= without.plan.objective_value + 1e-12
        )


class TestValidation:
    def test_no_tasks(self, medium_instance):
        cluster, _, _ = medium_instance
        with pytest.raises(ConfigError):
            solve_sharded([], cluster)

    def test_duplicate_names(self, medium_instance):
        cluster, tasks, cands = medium_instance
        dup = [tasks[0], tasks[0]]
        with pytest.raises(ConfigError):
            solve_sharded(dup, cluster, candidates=[cands[0], cands[0]])

    def test_unknown_device(self, medium_instance):
        cluster, tasks, cands = medium_instance
        bad = [dataclasses.replace(tasks[0], device_name="ghost")]
        with pytest.raises(ConfigError):
            solve_sharded(bad, cluster, candidates=[cands[0]])

    def test_candidates_length_mismatch(self, medium_instance):
        cluster, tasks, cands = medium_instance
        with pytest.raises(ConfigError):
            solve_sharded(tasks, cluster, candidates=cands[:-1])
