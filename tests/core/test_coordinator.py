"""The hierarchical coordinator: shard solves + cross-shard migration."""

import dataclasses

import numpy as np
import pytest

from repro.core.candidates import build_candidates
from repro.core.coordinator import ShardedResult, solve_sharded
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.errors import ConfigError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer, get_tracer, set_tracer
from repro.workloads.scenarios import build_scenario


@pytest.fixture(scope="module")
def medium_instance():
    cluster, tasks = build_scenario("smart_city", num_tasks=24, num_servers=4, seed=3)
    return cluster, tasks, [build_candidates(t) for t in tasks]


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(shards=0),
            dict(shards=-1),
            dict(shard_by="hash"),
            dict(migration_rounds=-1),
            dict(migration_hysteresis=-0.5),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            JointSolverConfig(**kwargs)

    def test_more_shards_than_servers_rejected_at_solve(self, medium_instance):
        cluster, tasks, cands = medium_instance
        cfg = JointSolverConfig(shards=cluster.num_servers + 1)
        with pytest.raises(ConfigError):
            JointOptimizer(cluster, config=cfg).solve(tasks, candidates=cands)


class TestSingleShardIdentity:
    def test_bit_identical_to_centralized(self, medium_instance):
        # JointOptimizer keeps shards=1 on the centralized path; calling the
        # coordinator directly exercises its degenerate early return
        cluster, tasks, cands = medium_instance
        cen = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=7)
        one = solve_sharded(
            tasks, cluster, config=JointSolverConfig(shards=1),
            candidates=cands, seed=7,
        )
        assert isinstance(one, ShardedResult)
        assert one.plan.assignment == cen.plan.assignment
        assert one.plan.features == cen.plan.features
        assert one.plan.latencies == cen.plan.latencies
        assert one.plan.compute_shares == cen.plan.compute_shares
        assert one.plan.bandwidth_shares == cen.plan.bandwidth_shares
        assert one.plan.objective_value == cen.plan.objective_value
        assert one.history == cen.history
        assert one.iterations == cen.iterations
        assert one.migration_history == []


class TestShardedSolve:
    @pytest.fixture(scope="class")
    def result(self, medium_instance):
        cluster, tasks, cands = medium_instance
        cfg = JointSolverConfig(shards=2, migration_rounds=3)
        return solve_sharded(
            tasks, cluster, config=cfg, candidates=cands, seed=7
        )

    def test_complete_plan(self, medium_instance, result):
        _, tasks, _ = medium_instance
        for t in tasks:
            assert t.name in result.plan.latencies
            assert np.isfinite(result.plan.latencies[t.name])

    def test_shard_stats_cover_all_tasks(self, medium_instance, result):
        _, tasks, _ = medium_instance
        assert len(result.shard_stats) == 2
        assert sum(st.num_tasks for st in result.shard_stats) == len(tasks)

    def test_counters(self, result):
        assert result.perf.shard_solves == 2
        assert result.perf.migration_rounds == len(result.migration_history)
        assert result.perf.migrations == sum(result.migration_history)

    def test_final_homing_matches_assignment(self, medium_instance, result):
        # after migration, every offloaded task's homing shard owns the
        # server it is assigned to
        cluster, tasks, _ = medium_instance
        plan = result.shard_plan
        for i, t in enumerate(tasks):
            s = result.plan.assignment[t.name]  # global server index or None
            if s is not None:
                assert plan.shard_of_server(s) == plan.task_shard[i]

    def test_migration_improves_or_holds(self, result):
        # history[0] is the stitched objective before migration
        assert result.history[-1] <= result.history[0] + 1e-12

    def test_deterministic(self, medium_instance, result):
        cluster, tasks, cands = medium_instance
        again = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=3),
            candidates=cands, seed=7,
        )
        assert again.plan.assignment == result.plan.assignment
        assert again.plan.latencies == result.plan.latencies
        assert again.migration_history == result.migration_history
        assert again.history == result.history

    def test_serial_parallel_fanout_identical(self, medium_instance, result):
        cluster, tasks, cands = medium_instance
        par = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(
                shards=2, migration_rounds=3, restart_workers=4
            ),
            candidates=cands, seed=7,
        )
        assert par.plan.assignment == result.plan.assignment
        assert par.plan.latencies == result.plan.latencies
        assert par.plan.objective_value == result.plan.objective_value
        assert par.migration_history == result.migration_history

    def test_seed_changes_solution_space_not_validity(self, medium_instance):
        cluster, tasks, cands = medium_instance
        cfg = JointSolverConfig(shards=2, migration_rounds=1)
        other = solve_sharded(tasks, cluster, config=cfg, candidates=cands, seed=11)
        for t in tasks:
            assert np.isfinite(other.plan.latencies[t.name])


class TestMigration:
    def test_zero_rounds_skips_migration(self, medium_instance):
        cluster, tasks, cands = medium_instance
        res = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=0),
            candidates=cands, seed=7,
        )
        assert res.migration_history == []
        assert res.perf.migrations == 0
        assert res.shard_plan.task_shard == tuple(res.shard_plan.task_shard)

    def test_migration_strictly_helps_here(self, medium_instance):
        # on this instance the partition leaves cross-shard gains on the
        # table; the coordinator should find at least one
        cluster, tasks, cands = medium_instance
        without = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=0),
            candidates=cands, seed=7,
        )
        with_mig = solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=3),
            candidates=cands, seed=7,
        )
        assert with_mig.perf.migrations > 0
        assert (
            with_mig.plan.objective_value <= without.plan.objective_value + 1e-12
        )


class TestTraceDeterminism:
    """Serial and parallel fan-outs record the same merged span sequence."""

    @staticmethod
    def _traced_solve(medium_instance, workers):
        cluster, tasks, cands = medium_instance
        saved = get_tracer()
        set_tracer(Tracer(enabled=True))
        try:
            solve_sharded(
                tasks, cluster,
                config=JointSolverConfig(
                    shards=2, migration_rounds=3, restart_workers=workers
                ),
                candidates=cands, seed=7,
            )
            return get_tracer().drain()
        finally:
            set_tracer(saved)

    def test_serial_parallel_span_sequences_identical(self, medium_instance):
        serial = self._traced_solve(medium_instance, workers=1)
        parallel = self._traced_solve(medium_instance, workers=4)

        def shape(spans):
            return [(s.name, s.span_id, s.parent_id, s.stream) for s in spans]

        assert shape(parallel) == shape(serial)
        # spans arrive merged by (stream, seq): shard solves occupy their
        # deterministic stream blocks regardless of thread scheduling
        ids = [s.span_id for s in serial]
        assert ids == sorted(ids)
        assert {s.stream for s in serial} > {0}  # shard streams present

    def test_shard_streams_reparent_under_root(self, medium_instance):
        spans = self._traced_solve(medium_instance, workers=4)
        root = next(s for s in spans if s.name == "solve.sharded")
        off_stream = [s for s in spans if s.stream != root.stream]
        assert off_stream
        tops = [s for s in off_stream if s.parent_id == root.span_id]
        assert tops  # each shard's top-level solve hangs off the root span


class TestPublishHealth:
    @pytest.fixture(scope="class")
    def result(self, medium_instance):
        cluster, tasks, cands = medium_instance
        return solve_sharded(
            tasks, cluster,
            config=JointSolverConfig(shards=2, migration_rounds=3),
            candidates=cands, seed=7,
        )

    def test_gauges_cover_every_shard(self, medium_instance, result):
        _, tasks, _ = medium_instance
        reg = MetricsRegistry()
        result.publish_health(reg, tasks=tasks)
        homed_total = 0
        for s in range(2):
            for f in ("tasks", "objective", "solve_s", "iterations",
                      "migrations_in", "utilization", "violation_rate"):
                assert f"shard.{s}.{f}" in reg, f"missing shard.{s}.{f}"
            homed_total += int(reg.gauge(f"shard.{s}.tasks").value)
            assert 0.0 <= reg.gauge(f"shard.{s}.violation_rate").value <= 1.0
        assert homed_total == len(tasks)
        assert reg.counter("shard.migration.accepted").value == sum(
            result.migration_history
        )
        assert reg.gauge("shard.migration.rounds").value == len(
            result.migration_history
        )

    def test_migrations_in_reflects_rehoming(self, result):
        # post-migration homing minus the shard's solve-time task count
        reg = MetricsRegistry()
        result.publish_health(reg)
        for st in result.shard_stats:
            moved = reg.gauge(f"shard.{st.shard}.migrations_in").value
            assert moved == reg.gauge(f"shard.{st.shard}.tasks").value - st.num_tasks

    def test_without_tasks_skips_derived_gauges(self, result):
        reg = MetricsRegistry()
        result.publish_health(reg)
        assert "shard.0.tasks" in reg
        assert "shard.0.utilization" not in reg
        assert "shard.0.violation_rate" not in reg

    def test_requires_shard_plan(self, result):
        bare = dataclasses.replace(result, shard_plan=None)
        with pytest.raises(ConfigError, match="no shard plan"):
            bare.publish_health(MetricsRegistry())

    def test_rejects_foreign_task_list(self, medium_instance, result):
        _, tasks, _ = medium_instance
        with pytest.raises(ConfigError, match="sequence solve_sharded ran over"):
            result.publish_health(MetricsRegistry(), tasks=tasks[:-1])


class TestValidation:
    def test_no_tasks(self, medium_instance):
        cluster, _, _ = medium_instance
        with pytest.raises(ConfigError):
            solve_sharded([], cluster)

    def test_duplicate_names(self, medium_instance):
        cluster, tasks, cands = medium_instance
        dup = [tasks[0], tasks[0]]
        with pytest.raises(ConfigError):
            solve_sharded(dup, cluster, candidates=[cands[0], cands[0]])

    def test_unknown_device(self, medium_instance):
        cluster, tasks, cands = medium_instance
        bad = [dataclasses.replace(tasks[0], device_name="ghost")]
        with pytest.raises(ConfigError):
            solve_sharded(bad, cluster, candidates=[cands[0]])

    def test_candidates_length_mismatch(self, medium_instance):
        cluster, tasks, cands = medium_instance
        with pytest.raises(ConfigError):
            solve_sharded(tasks, cluster, candidates=cands[:-1])
