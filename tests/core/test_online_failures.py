"""Server-liveness handling in the online controller: immediate repair
solves, cluster shrinking, recovery, and plan-repair packaging."""

import pytest

from repro.core.online import (
    ControllerConfig,
    EnvironmentSample,
    OnlineController,
)
from repro.errors import ConfigError
from repro.faults.policy import PlanUpdate


@pytest.fixture()
def controller(small_cluster, small_tasks, small_candidates):
    return OnlineController(
        small_cluster,
        small_tasks,
        candidates=small_candidates,
        config=ControllerConfig(replan_threshold=0.3, min_replan_interval_s=1.0),
    )


def _assigned_server(controller, cluster):
    """Name of a server carrying at least one task in the active plan."""
    for name, idx in controller.plan.assignment.items():
        if idx is not None:
            return cluster.servers[idx].name
    pytest.skip("plan offloads nothing")


class TestSampleValidation:
    def test_down_up_overlap_rejected(self):
        with pytest.raises(ConfigError, match="both down and up"):
            EnvironmentSample(time_s=1.0, server_down=("s",), server_up=("s",))

    def test_unknown_down_server_rejected(self, controller):
        with pytest.raises(ConfigError, match="unknown server"):
            controller.observe(EnvironmentSample(time_s=1.0, server_down=("ghost",)))

    def test_unknown_up_server_rejected(self, controller):
        with pytest.raises(ConfigError, match="unknown server"):
            controller.observe(EnvironmentSample(time_s=1.0, server_up=("ghost",)))


class TestServerFailure:
    def test_failure_of_assigned_server_replans_immediately(
        self, controller, small_cluster
    ):
        victim = _assigned_server(controller, small_cluster)
        # t=0.1 is deep inside the hysteresis window of the initial solve at 0
        replanned = controller.observe(
            EnvironmentSample(time_s=0.1, server_down=(victim,))
        )
        assert replanned
        assert controller.down_servers == (victim,)
        # the repaired plan routes around the dead server
        for idx in controller.plan.assignment.values():
            if idx is not None:
                assert small_cluster.servers[idx].name != victim

    def test_repair_reason_names_stranded_tasks(self, controller, small_cluster):
        victim = _assigned_server(controller, small_cluster)
        controller.observe(EnvironmentSample(time_s=0.1, server_down=(victim,)))
        assert "server failure" in controller.events[-1].reason
        assert victim in controller.events[-1].reason

    def test_current_cluster_excludes_down_servers(self, controller, small_cluster):
        victim = _assigned_server(controller, small_cluster)
        controller.observe(EnvironmentSample(time_s=0.1, server_down=(victim,)))
        names = [s.name for s in controller.current_cluster().servers]
        assert victim not in names
        assert len(names) == len(small_cluster.servers) - 1

    def test_all_servers_down_raises(self, controller, small_cluster):
        names = tuple(s.name for s in small_cluster.servers)
        with pytest.raises(ConfigError, match="all edge servers are down"):
            controller.observe(EnvironmentSample(time_s=0.1, server_down=names))

    def test_redundant_down_report_is_idempotent(self, controller, small_cluster):
        victim = _assigned_server(controller, small_cluster)
        controller.observe(EnvironmentSample(time_s=0.1, server_down=(victim,)))
        count = controller.replan_count
        # same server reported down again: no new transition, no re-solve
        replanned = controller.observe(
            EnvironmentSample(time_s=0.2, server_down=(victim,))
        )
        assert not replanned
        assert controller.replan_count == count


class TestServerRecovery:
    def test_recovery_replans_and_restores_cluster(self, controller, small_cluster):
        victim = _assigned_server(controller, small_cluster)
        controller.observe(EnvironmentSample(time_s=0.1, server_down=(victim,)))
        replanned = controller.observe(
            EnvironmentSample(time_s=5.0, server_up=(victim,))
        )
        assert replanned
        assert controller.down_servers == ()
        assert len(controller.current_cluster().servers) == len(small_cluster.servers)

    def test_recovery_of_unknown_outage_is_noop(self, controller, small_cluster):
        alive = small_cluster.servers[0].name
        replanned = controller.observe(
            EnvironmentSample(time_s=5.0, server_up=(alive,))
        )
        assert not replanned


class TestPlanRepairPackaging:
    def test_repair_update_wraps_active_plan(self, controller):
        update = controller.repair_update(3.0)
        assert isinstance(update, PlanUpdate)
        assert update.time_s == 3.0
        assert update.plan is controller.plan
        assert update.shed_tasks == ()

    def test_shed_on_overload_populates_update(
        self, small_cluster, small_tasks, small_candidates
    ):
        import dataclasses

        # deadlines nothing can meet force admission control to shed
        doomed = [
            dataclasses.replace(t, deadline_s=1e-6, arrival_rate=50.0)
            for t in small_tasks
        ]
        ctl = OnlineController(
            small_cluster,
            doomed,
            config=ControllerConfig(shed_on_overload=True),
        )
        assert ctl.shed_tasks
        update = ctl.repair_update(0.0)
        assert update.shed_tasks == ctl.shed_tasks
