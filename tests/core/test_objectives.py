"""Objective functions."""

import numpy as np
import pytest

from repro.core.objectives import Objective, deadline_miss_fraction
from repro.core.plan import TaskSpec
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def tasks(me_resnet18):
    return [
        TaskSpec("a", me_resnet18, "d", deadline_s=0.1, weight=1.0),
        TaskSpec("b", me_resnet18, "d", deadline_s=0.2, weight=3.0),
    ]


class TestAvgLatency:
    def test_weighted_mean(self, tasks):
        lat = np.array([0.1, 0.2])
        v = Objective.AVG_LATENCY.evaluate(lat, tasks)
        assert v == pytest.approx((1 * 0.1 + 3 * 0.2) / 4)

    def test_inf_propagates(self, tasks):
        assert Objective.AVG_LATENCY.evaluate(np.array([np.inf, 0.1]), tasks) == np.inf


class TestMaxLatency:
    def test_max(self, tasks):
        assert Objective.MAX_LATENCY.evaluate(np.array([0.1, 0.3]), tasks) == pytest.approx(0.3)


class TestDeadlineMiss:
    def test_all_meet(self, tasks):
        v = Objective.DEADLINE_MISS.evaluate(np.array([0.05, 0.1]), tasks)
        assert v < 0.01  # only the tie-break term

    def test_one_misses(self, tasks):
        v = Objective.DEADLINE_MISS.evaluate(np.array([0.15, 0.1]), tasks)
        assert 0.5 <= v < 0.51

    def test_tiebreak_orders_within_same_miss_count(self, tasks):
        fast = Objective.DEADLINE_MISS.evaluate(np.array([0.01, 0.01]), tasks)
        slow = Objective.DEADLINE_MISS.evaluate(np.array([0.09, 0.19]), tasks)
        assert fast < slow

    def test_urgency_weighting(self, tasks):
        w_a = Objective.DEADLINE_MISS.task_weight(tasks[0])
        w_b = Objective.DEADLINE_MISS.task_weight(tasks[1])
        assert w_a == pytest.approx(1.0 / 0.1)
        assert w_b == pytest.approx(3.0 / 0.2)

    def test_plain_weight_for_avg(self, tasks):
        assert Objective.AVG_LATENCY.task_weight(tasks[1]) == 3.0


class TestValidation:
    def test_shape_mismatch(self, tasks):
        with pytest.raises(ConfigError):
            Objective.AVG_LATENCY.evaluate(np.array([0.1]), tasks)

    def test_miss_fraction_reporting(self, tasks):
        assert deadline_miss_fraction(np.array([0.15, 0.1]), tasks) == pytest.approx(0.5)

    def test_evaluate_empty_tasks_rejected(self):
        with pytest.raises(ConfigError):
            Objective.AVG_LATENCY.evaluate(np.array([]), [])

    def test_miss_fraction_empty_tasks_is_zero(self):
        assert deadline_miss_fraction(np.array([]), []) == 0.0

    def test_miss_fraction_shape_mismatch(self, tasks):
        with pytest.raises(ConfigError):
            deadline_miss_fraction(np.array([0.1]), tasks)
