"""Allocation: sqrt shares, assignment, solution evaluation."""

import numpy as np
import pytest

from repro.core.allocation import (
    Allocation,
    allocate_shares,
    assign_servers,
    solution_latencies,
    sqrt_shares,
)
from repro.core.objectives import Objective
from repro.errors import ConfigError


class TestSqrtShares:
    def test_sums_to_one(self):
        x = sqrt_shares(np.array([1.0, 4.0, 9.0]))
        assert x.sum() == pytest.approx(1.0)

    def test_proportional_to_sqrt(self):
        x = sqrt_shares(np.array([1.0, 4.0]))
        assert x[1] / x[0] == pytest.approx(2.0)

    def test_kkt_optimality(self):
        """sqrt shares minimize sum(a_i / x_i) s.t. sum x = 1: perturbing any
        pair of shares must not decrease the objective."""
        a = np.array([0.5, 2.0, 7.0])
        x = sqrt_shares(a)
        base = float(np.sum(a / x))
        rng = np.random.default_rng(0)
        for _ in range(200):
            i, j = rng.choice(3, size=2, replace=False)
            eps = float(rng.uniform(-min(x[i], x[j]) * 0.5, min(x[i], x[j]) * 0.5))
            y = x.copy()
            y[i] += eps
            y[j] -= eps
            if np.any(y <= 0):
                continue
            assert float(np.sum(a / y)) >= base - 1e-9

    def test_zero_weights_get_full_share(self):
        x = sqrt_shares(np.array([0.0, 4.0]))
        assert x[0] == 1.0
        assert x[1] == 1.0  # only active weights share

    def test_negative_weight_raises(self):
        with pytest.raises(ConfigError):
            sqrt_shares(np.array([-1.0]))


class TestAllocation:
    def test_valid(self):
        Allocation([None, 0], np.array([1.0, 0.5]), np.array([1.0, 1.0]))

    def test_share_bounds(self):
        with pytest.raises(ConfigError):
            Allocation([0], np.array([0.0]), np.array([1.0]))
        with pytest.raises(ConfigError):
            Allocation([0], np.array([1.0]), np.array([1.5]))

    def test_length_mismatch(self):
        with pytest.raises(ConfigError):
            Allocation([0, 1], np.array([1.0]), np.array([1.0, 1.0]))


class TestAllocateShares:
    def test_shares_sum_per_server(self, small_tasks, small_candidates, small_cluster, latency_model):
        assignment = [0, 0]
        alloc = allocate_shares(
            small_tasks, small_candidates, [0, 0], assignment, small_cluster, latency_model
        )
        # both tasks offloading plans? plan 0 may be local; use plans with srv work
        idx = [int(np.argmax(cs.srv_flops)) for cs in small_candidates]
        alloc = allocate_shares(
            small_tasks, small_candidates, idx, assignment, small_cluster, latency_model
        )
        assert alloc.compute_shares.sum() == pytest.approx(1.0)

    def test_different_servers_full_shares(self, small_tasks, small_candidates, small_cluster, latency_model):
        idx = [int(np.argmax(cs.srv_flops)) for cs in small_candidates]
        alloc = allocate_shares(
            small_tasks, small_candidates, idx, [0, 1], small_cluster, latency_model
        )
        np.testing.assert_allclose(alloc.compute_shares, 1.0)

    def test_local_tasks_unconstrained(self, small_tasks, small_candidates, small_cluster, latency_model):
        alloc = allocate_shares(
            small_tasks, small_candidates, [0, 0], [None, None], small_cluster, latency_model
        )
        np.testing.assert_allclose(alloc.compute_shares, 1.0)
        np.testing.assert_allclose(alloc.bandwidth_shares, 1.0)

    def test_urgent_task_gets_more_under_deadline_objective(
        self, small_tasks, small_candidates, small_cluster, latency_model
    ):
        import dataclasses

        idx = [int(np.argmax(cs.srv_flops)) for cs in small_candidates]
        tasks = [
            dataclasses.replace(small_tasks[0], deadline_s=0.02),
            dataclasses.replace(small_tasks[1], deadline_s=2.0),
        ]
        alloc = allocate_shares(
            tasks, small_candidates, idx, [0, 0], small_cluster, latency_model,
            objective=Objective.DEADLINE_MISS,
        )
        base = allocate_shares(
            tasks, small_candidates, idx, [0, 0], small_cluster, latency_model,
            objective=Objective.AVG_LATENCY,
        )
        assert alloc.compute_shares[0] > base.compute_shares[0]

    def test_length_mismatch_raises(self, small_tasks, small_candidates, small_cluster, latency_model):
        with pytest.raises(ConfigError):
            allocate_shares(
                small_tasks, small_candidates, [0], [0, 0], small_cluster, latency_model
            )


class TestAssignServers:
    def test_assigns_all_tasks(self, small_tasks, small_candidates, small_cluster, latency_model):
        a = assign_servers(small_tasks, small_candidates, small_cluster, latency_model)
        assert len(a) == 2
        for s in a:
            assert s is None or 0 <= s < small_cluster.num_servers

    def test_empty_tasks(self, small_cluster, latency_model):
        assert assign_servers([], [], small_cluster, latency_model) == []


class TestSolutionLatencies:
    def test_local_only_plan_needs_no_server(self, small_tasks, small_candidates, small_cluster, latency_model):
        local_idx = [
            next(i for i, f in enumerate(cs.features) if f.is_local_only)
            for cs in small_candidates
        ]
        alloc = Allocation([None, None], np.ones(2), np.ones(2))
        # without queueing: always finite (a Pi may be too slow to *sustain*
        # the stream — that is the queueing term's job to flag)
        lat = solution_latencies(
            small_tasks, small_candidates, local_idx, alloc, small_cluster,
            latency_model, include_queueing=False,
        )
        assert np.all(np.isfinite(lat))

    def test_offload_plan_without_server_is_inf(self, small_tasks, small_candidates, small_cluster, latency_model):
        off_idx = [int(np.argmax(cs.p_offload)) for cs in small_candidates]
        alloc = Allocation([None, None], np.ones(2), np.ones(2))
        lat = solution_latencies(
            small_tasks, small_candidates, off_idx, alloc, small_cluster, latency_model
        )
        assert np.all(np.isinf(lat))

    def test_queueing_increases_latency(self, small_tasks, small_candidates, small_cluster, latency_model):
        off_idx = [int(np.argmax(cs.p_offload)) for cs in small_candidates]
        alloc = Allocation([0, 1], np.ones(2), np.ones(2))
        with_q = solution_latencies(
            small_tasks, small_candidates, off_idx, alloc, small_cluster, latency_model, True
        )
        without_q = solution_latencies(
            small_tasks, small_candidates, off_idx, alloc, small_cluster, latency_model, False
        )
        assert np.all(with_q >= without_q - 1e-15)

    def test_overload_is_inf(self, small_tasks, small_candidates, small_cluster, latency_model):
        import dataclasses

        hot = [dataclasses.replace(t, arrival_rate=1e6) for t in small_tasks]
        off_idx = [int(np.argmax(cs.p_offload)) for cs in small_candidates]
        alloc = Allocation([0, 1], np.ones(2), np.ones(2))
        lat = solution_latencies(
            hot, small_candidates, off_idx, alloc, small_cluster, latency_model
        )
        assert np.all(np.isinf(lat))


class TestPowerShares:
    def test_exponent_zero_equal(self):
        from repro.core.allocation import power_shares

        x = power_shares(np.array([1.0, 100.0]), exponent=0.0)
        np.testing.assert_allclose(x, [0.5, 0.5])

    def test_exponent_one_proportional(self):
        from repro.core.allocation import power_shares

        x = power_shares(np.array([1.0, 3.0]), exponent=1.0)
        np.testing.assert_allclose(x, [0.25, 0.75])

    def test_half_matches_sqrt(self):
        from repro.core.allocation import power_shares

        w = np.array([0.3, 2.0, 9.0])
        np.testing.assert_allclose(power_shares(w, 0.5), sqrt_shares(w))

    def test_invalid_exponent(self):
        from repro.core.allocation import power_shares

        with pytest.raises(ConfigError):
            power_shares(np.array([1.0]), exponent=1.5)

    def test_exponent_one_equalizes_latency_contributions(self):
        from repro.core.allocation import power_shares

        a = np.array([0.5, 2.0, 7.0])
        x = power_shares(a, exponent=1.0)
        contributions = a / x
        assert np.allclose(contributions, contributions[0])


class TestOverloadPenaltyMode:
    def test_penalty_finite_and_graded(self, small_tasks, small_candidates, small_cluster, latency_model):
        import dataclasses

        hot = [dataclasses.replace(t, arrival_rate=1e3) for t in small_tasks]
        hotter = [dataclasses.replace(t, arrival_rate=2e3) for t in small_tasks]
        off_idx = [int(np.argmax(cs.p_offload)) for cs in small_candidates]
        alloc = Allocation([0, 1], np.ones(2), np.ones(2))
        p1 = solution_latencies(
            hot, small_candidates, off_idx, alloc, small_cluster, latency_model,
            overload="penalty",
        )
        p2 = solution_latencies(
            hotter, small_candidates, off_idx, alloc, small_cluster, latency_model,
            overload="penalty",
        )
        assert np.all(np.isfinite(p1)) and np.all(np.isfinite(p2))
        assert np.all(p2 > p1)  # more overloaded -> larger surrogate

    def test_penalty_agrees_when_stable(self, small_tasks, small_candidates, small_cluster, latency_model):
        local_idx = [
            next(i for i, f in enumerate(cs.features) if f.is_local_only)
            for cs in small_candidates
        ]
        alloc = Allocation([None, None], np.ones(2), np.ones(2))
        a = solution_latencies(
            small_tasks, small_candidates, local_idx, alloc, small_cluster,
            latency_model, include_queueing=False,
        )
        b = solution_latencies(
            small_tasks, small_candidates, local_idx, alloc, small_cluster,
            latency_model, include_queueing=False, overload="penalty",
        )
        np.testing.assert_allclose(a, b)

    def test_invalid_mode_rejected(self, small_tasks, small_candidates, small_cluster, latency_model):
        alloc = Allocation([None, None], np.ones(2), np.ones(2))
        with pytest.raises(ConfigError):
            solution_latencies(
                small_tasks, small_candidates, [0, 0], alloc, small_cluster,
                latency_model, overload="maybe",
            )
