"""The BCD joint optimizer."""

import dataclasses

import numpy as np
import pytest

from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.objectives import Objective
from repro.core.plan import TaskSpec
from repro.errors import ConfigError


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(max_iterations=0),
            dict(tol=-1.0),
            dict(reassign_every=0),
            dict(restarts=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            JointSolverConfig(**kwargs)


class TestSolve:
    def test_produces_complete_plan(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        plan = res.plan
        for t in small_tasks:
            assert t.name in plan.features
            assert t.name in plan.latencies
            assert np.isfinite(plan.latencies[t.name])

    def test_objective_matches_latencies(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        lat = np.array([res.plan.latencies[t.name] for t in small_tasks])
        assert res.plan.objective_value == pytest.approx(
            Objective.AVG_LATENCY.evaluate(lat, small_tasks)
        )

    def test_history_monotone_nonincreasing(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        finite = [h for h in res.history if np.isfinite(h)]
        assert all(b <= a + 1e-12 for a, b in zip(finite, finite[1:]))

    def test_converges(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        assert res.converged

    def test_respects_accuracy_floor(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        for t in small_tasks:
            assert res.plan.features[t.name].accuracy >= t.accuracy_floor - 1e-9

    def test_deterministic_given_seed(self, small_cluster, small_tasks, small_candidates):
        a = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates, seed=5)
        b = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates, seed=5)
        assert a.plan.objective_value == b.plan.objective_value
        assert a.plan.assignment == b.plan.assignment

    def test_restarts_never_worse(self, small_cluster, small_tasks, small_candidates):
        one = JointOptimizer(
            small_cluster, config=JointSolverConfig(restarts=1)
        ).solve(small_tasks, candidates=small_candidates, seed=1)
        three = JointOptimizer(
            small_cluster, config=JointSolverConfig(restarts=3)
        ).solve(small_tasks, candidates=small_candidates, seed=1)
        assert three.plan.objective_value <= one.plan.objective_value + 1e-12

    def test_empty_tasks_raise(self, small_cluster):
        with pytest.raises(ConfigError):
            JointOptimizer(small_cluster).solve([])

    def test_duplicate_names_raise(self, small_cluster, small_tasks):
        with pytest.raises(ConfigError):
            JointOptimizer(small_cluster).solve([small_tasks[0], small_tasks[0]])

    def test_unknown_device_raises(self, small_cluster, me_resnet18):
        t = TaskSpec("x", me_resnet18, "ghost_device")
        with pytest.raises(ConfigError):
            JointOptimizer(small_cluster).solve([t])

    def test_candidates_length_mismatch(self, small_cluster, small_tasks, small_candidates):
        with pytest.raises(ConfigError):
            JointOptimizer(small_cluster).solve(
                small_tasks, candidates=small_candidates[:1]
            )

    def test_shares_within_capacity(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        per_server = {}
        for t in small_tasks:
            s = res.plan.assignment[t.name]
            if s is not None and res.plan.features[t.name].srv_flops > 0:
                per_server.setdefault(s, 0.0)
                per_server[s] += res.plan.compute_shares[t.name]
        for total in per_server.values():
            assert total <= 1.0 + 1e-9

    def test_deadline_objective_runs(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(
            small_cluster, objective=Objective.DEADLINE_MISS
        ).solve(small_tasks, candidates=small_candidates)
        assert np.isfinite(res.plan.objective_value)

    def test_candidate_counts_reported(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        assert res.candidate_counts == {
            t.name: len(c) for t, c in zip(small_tasks, small_candidates)
        }

    def test_summary_mentions_all_tasks(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(small_tasks, candidates=small_candidates)
        s = res.plan.summary()
        for t in small_tasks:
            assert t.name in s
