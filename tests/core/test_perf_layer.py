"""The solver performance layer is invisible in results: cached candidate
pipelines, incremental share re-solves, and parallel restarts must all be
bit-exact against their from-scratch counterparts, with the work counters
recording what was actually done."""

import numpy as np
import pytest

from repro.core.allocation import (
    IncrementalAllocator,
    allocate_shares,
    solution_latencies,
    solution_latency_task,
)
from repro.core.candidates import (
    CandidateSet,
    build_candidates,
    candidate_cache_stats,
    clear_candidate_cache,
)
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.plan import TaskSpec
from repro.devices.latency import LatencyModel


def assert_plans_bitequal(a, b):
    """Byte-identical JointPlans: every float compared with ==, not isclose."""
    assert a.assignment == b.assignment
    assert a.compute_shares == b.compute_shares
    assert a.bandwidth_shares == b.bandwidth_shares
    assert a.latencies == b.latencies
    assert a.objective_value == b.objective_value
    assert {k: f.plan for k, f in a.features.items()} == {
        k: f.plan for k, f in b.features.items()
    }


class TestCandidateCache:
    def test_cache_hit_returns_equal_arrays(self, small_tasks):
        clear_candidate_cache()
        first = build_candidates(small_tasks[0])
        before = candidate_cache_stats()
        second = build_candidates(small_tasks[0])
        after = candidate_cache_stats()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses
        np.testing.assert_array_equal(first.dev_flops, second.dev_flops)
        np.testing.assert_array_equal(first.accuracy, second.accuracy)
        assert first.features == second.features

    def test_cache_off_bitequal_to_cache_on(self, small_tasks):
        clear_candidate_cache()
        cached = build_candidates(small_tasks[0], cache=True)
        uncached = build_candidates(small_tasks[0], cache=False)
        assert len(cached) == len(uncached)
        for name in ("dev_flops", "srv_flops", "wire_bytes", "p_offload",
                     "accuracy", "dev_flops_sq", "srv_flops_sq", "wire_bytes_sq"):
            np.testing.assert_array_equal(
                getattr(cached, name), getattr(uncached, name)
            )

    def test_derived_set_rebinds_task(self, small_tasks, me_resnet18):
        clear_candidate_cache()
        build_candidates(small_tasks[0])
        other = TaskSpec(
            "clone", me_resnet18, "dev1",
            deadline_s=0.5, accuracy_floor=small_tasks[0].accuracy_floor,
        )
        cs = build_candidates(other)
        assert cs.task is other

    def test_take_matches_list_rebuild(self, small_candidates):
        cs = small_candidates[0]
        idx = list(range(0, len(cs), 3))
        sliced = cs._take(idx)
        rebuilt = CandidateSet(cs.task, [cs.features[i] for i in idx])
        assert sliced.features == rebuilt.features
        np.testing.assert_array_equal(sliced.dev_flops, rebuilt.dev_flops)
        np.testing.assert_array_equal(sliced.wire_bytes_sq, rebuilt.wire_bytes_sq)

    def test_pruned_matches_quadratic_reference(self, small_candidates):
        cs = small_candidates[0]
        # reference: the original O(n^2) Python dominance scan
        order = np.argsort(-cs.accuracy, kind="stable")
        cost = np.stack(
            [cs.dev_flops, cs.srv_flops, cs.wire_bytes, cs.p_offload], axis=1
        )
        kept = []
        for idx in order:
            dominated = False
            for k in kept:
                if (
                    cs.accuracy[k] >= cs.accuracy[idx] - 1e-12
                    and np.all(cost[k] <= cost[idx] + 1e-9)
                    and (
                        cs.accuracy[k] > cs.accuracy[idx] + 1e-12
                        or np.any(cost[k] < cost[idx] - 1e-9)
                    )
                ):
                    dominated = True
                    break
            if not dominated:
                kept.append(idx)
        expected = [cs.features[i] for i in sorted(kept)]
        assert cs.pruned().features == expected


class TestIncrementalAllocator:
    @pytest.fixture()
    def state(self, small_cluster, small_tasks, small_candidates):
        inc = IncrementalAllocator(
            small_tasks, small_candidates, small_cluster, LatencyModel()
        )
        plan_idx = [len(c) // 2 for c in small_candidates]
        assignment = [0, 1]
        return inc, plan_idx, assignment

    def test_solve_bitequal_to_allocate_shares(
        self, state, small_cluster, small_tasks, small_candidates
    ):
        inc, plan_idx, assignment = state
        a = inc.solve(plan_idx, assignment)
        b = allocate_shares(
            small_tasks, small_candidates, plan_idx, assignment,
            small_cluster, LatencyModel(),
        )
        np.testing.assert_array_equal(a.compute_shares, b.compute_shares)
        np.testing.assert_array_equal(a.bandwidth_shares, b.bandwidth_shares)

    @pytest.mark.parametrize("move", [(0, None), (0, 1), (1, 0), (1, None)])
    def test_update_bitequal_to_full_solve(self, state, move):
        inc, plan_idx, assignment = state
        base = inc.solve(plan_idx, assignment)
        task, dest = move
        new_assign = list(assignment)
        new_assign[task] = dest
        new_idx = list(plan_idx)
        new_idx[task] = 0
        incremental = inc.update(base, new_idx, new_assign, (task,))
        full = inc.solve(new_idx, new_assign)
        assert incremental.assignment == full.assignment
        np.testing.assert_array_equal(
            incremental.compute_shares, full.compute_shares
        )
        np.testing.assert_array_equal(
            incremental.bandwidth_shares, full.bandwidth_shares
        )

    def test_task_kernel_matches_solution_latencies(
        self, state, small_cluster, small_tasks, small_candidates
    ):
        inc, plan_idx, assignment = state
        alloc = inc.solve(plan_idx, assignment)
        lat = solution_latencies(
            small_tasks, small_candidates, plan_idx, alloc,
            small_cluster, LatencyModel(), overload="penalty",
        )
        for i, task in enumerate(small_tasks):
            one = solution_latency_task(
                task, small_candidates[i], plan_idx[i], alloc.assignment[i],
                float(alloc.compute_shares[i]), float(alloc.bandwidth_shares[i]),
                small_cluster, LatencyModel(), overload="penalty",
            )
            assert one == lat[i]


class TestSolverDeterminism:
    def test_cache_on_off_same_plan(self, small_cluster, small_tasks):
        clear_candidate_cache()
        on = JointOptimizer(
            small_cluster, config=JointSolverConfig(candidate_cache=True)
        ).solve(small_tasks, seed=11)
        off = JointOptimizer(
            small_cluster, config=JointSolverConfig(candidate_cache=False)
        ).solve(small_tasks, seed=11)
        assert_plans_bitequal(on.plan, off.plan)
        assert on.history == off.history

    def test_parallel_restarts_match_serial(
        self, small_cluster, small_tasks, small_candidates
    ):
        serial = JointOptimizer(
            small_cluster, config=JointSolverConfig(restarts=3)
        ).solve(small_tasks, candidates=small_candidates, seed=11)
        parallel = JointOptimizer(
            small_cluster,
            config=JointSolverConfig(restarts=3, restart_workers=3),
        ).solve(small_tasks, candidates=small_candidates, seed=11)
        assert_plans_bitequal(serial.plan, parallel.plan)
        assert serial.history == parallel.history

    def test_invalid_restart_workers(self, small_cluster):
        with pytest.raises(Exception):
            JointSolverConfig(restart_workers=0)

    def test_parallel_restart_counters_match_serial(
        self, small_cluster, small_tasks, small_candidates
    ):
        """Merged work counters are order-independent: the parallel merge keys
        restarts by seed-stream index, so thread completion order is invisible."""
        serial = JointOptimizer(
            small_cluster, config=JointSolverConfig(restarts=4)
        ).solve(small_tasks, candidates=small_candidates, seed=11)
        parallel = JointOptimizer(
            small_cluster,
            config=JointSolverConfig(restarts=4, restart_workers=4),
        ).solve(small_tasks, candidates=small_candidates, seed=11)
        s, p = serial.perf.as_dict(), parallel.perf.as_dict()
        s.pop("solve_s"), p.pop("solve_s")  # wall clock is machine noise
        assert s == p


class TestPerfCounters:
    def test_counters_populated(self, small_cluster, small_tasks):
        clear_candidate_cache()
        opt = JointOptimizer(small_cluster)
        first = opt.solve(small_tasks, seed=3)
        second = opt.solve(small_tasks, seed=3)
        assert first.perf.allocate_calls > 0
        assert first.perf.latency_evals > 0
        assert first.perf.candidate_evals > 0
        assert first.perf.solve_s > 0
        assert first.perf.restarts == 1
        assert first.perf.candidate_cache_misses > 0
        # the repeat solve finds every candidate set already cached
        assert second.perf.candidate_cache_hits == len(small_tasks)
        assert second.perf.candidate_cache_misses == 0

    def test_as_dict_round_trips(self, small_cluster, small_tasks, small_candidates):
        res = JointOptimizer(small_cluster).solve(
            small_tasks, candidates=small_candidates, seed=3
        )
        d = res.perf.as_dict()
        assert d["allocate_calls"] == res.perf.allocate_calls
        assert set(d) >= {
            "solve_s", "allocate_calls", "allocate_group_solves",
            "latency_evals", "candidate_evals",
            "candidate_cache_hits", "candidate_cache_misses", "restarts",
        }
