"""Sparse affinity index ≡ dense reference, nested sharding, resolve_dirty.

The sparse mode's fast paths (top-k shortlists, template compression,
shortlist-walk foreign mins, cursor homing) promise *bit-identical*
decisions to the dense reference.  The scenarios here are deliberately
non-deduplicating — per-device heterogeneous access links (so
``StarTopology.row_key`` falls back to per-device fingerprints) and
``cache=False`` candidate pipelines (so no two tasks share a features
list) — to exercise the index without the template merging that scenario
presets enjoy.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.candidates import build_candidates
from repro.core.coordinator import resolve_dirty, solve_sharded
from repro.core.joint import JointSolverConfig
from repro.core.plan import TaskSpec
from repro.core.sharding import AffinityIndex, home_tasks
from repro.devices.cluster import EdgeCluster
from repro.devices.presets import SERVER_PRESETS, device_preset
from repro.errors import ConfigError
from repro.network.link import Link
from repro.network.topology import StarTopology
from repro.units import mbps
from repro.workloads.scenarios import build_scenario


@pytest.fixture(scope="module")
def hetero_instance(me_resnet18, me_alexnet):
    """3 devices × 4 servers, every access link distinct, unique candsets."""
    pi4 = device_preset("raspberry_pi4")
    devices = [dataclasses.replace(pi4, name=f"dev{i}") for i in range(3)]
    servers = [
        dataclasses.replace(
            SERVER_PRESETS["edge_gpu" if j % 2 else "edge_cpu"], name=f"srv{j}"
        )
        for j in range(4)
    ]
    links = {
        (d.name, s.name): Link(mbps(18 + 9 * i + 4 * j), rtt_s=(4 + 2 * i + j) * 1e-3)
        for i, d in enumerate(devices)
        for j, s in enumerate(servers)
    }
    topo = StarTopology([d.name for d in devices], [s.name for s in servers], links)
    cluster = EdgeCluster(devices, servers, topo)
    models = [me_resnet18, me_alexnet]
    tasks = [
        TaskSpec(
            f"t{i}",
            models[i % 2],
            f"dev{i % 3}",
            deadline_s=0.2 + 0.03 * i,
            accuracy_floor=0.5,
            arrival_rate=1.5 + 0.5 * i,
        )
        for i in range(9)
    ]
    cands = [build_candidates(t, cache=False) for t in tasks]
    return cluster, tasks, cands


PARTITIONS = [((0, 1), (2, 3)), ((0, 2), (1,), (3,)), ((0,), (1,), (2,), (3,))]


class TestSparseDenseEquivalence:
    def test_row_key_falls_back_on_hetero_links(self, hetero_instance):
        cluster, _, _ = hetero_instance
        assert not cluster.topology.is_row_uniform
        keys = {cluster.topology.row_key(f"dev{i}") for i in range(3)}
        assert len(keys) == 3  # distinct fingerprints, no cross-device merge

    def test_no_dedup_one_template_per_task(self, hetero_instance):
        cluster, tasks, cands = hetero_instance
        sp = AffinityIndex(tasks, cands, cluster, mode="sparse")
        assert sp.bounds.shape[0] == len(tasks)

    def test_bounds_identical(self, hetero_instance):
        cluster, tasks, cands = hetero_instance
        sp = AffinityIndex(tasks, cands, cluster, mode="sparse")
        de = AffinityIndex(tasks, cands, cluster, mode="dense")
        for i in range(len(tasks)):
            np.testing.assert_array_equal(
                sp.bounds[sp.template_of[i]], de.bounds[de.template_of[i]]
            )

    @pytest.mark.parametrize("shards", PARTITIONS)
    def test_foreign_mins_identical(self, hetero_instance, shards):
        cluster, tasks, cands = hetero_instance
        sp = AffinityIndex(tasks, cands, cluster, mode="sparse")
        de = AffinityIndex(tasks, cands, cluster, mode="dense")
        fv_s, fs_s = sp.foreign_mins(shards)
        fv_d, fs_d = de.foreign_mins(shards)
        for i in range(len(tasks)):
            np.testing.assert_array_equal(
                fv_s[sp.template_of[i]], fv_d[de.template_of[i]]
            )
            np.testing.assert_array_equal(
                fs_s[sp.template_of[i]], fs_d[de.template_of[i]]
            )

    @pytest.mark.parametrize("shards", PARTITIONS)
    def test_homing_identical(self, hetero_instance, shards):
        cluster, tasks, cands = hetero_instance
        sp = AffinityIndex(tasks, cands, cluster, mode="sparse")
        de = AffinityIndex(tasks, cands, cluster, mode="dense")
        assert home_tasks(
            tasks, cands, cluster, shards, affinity=sp
        ) == home_tasks(tasks, cands, cluster, shards, affinity=de)

    def test_solve_identical(self, hetero_instance):
        cluster, tasks, cands = hetero_instance
        results = {}
        for mode in ("sparse", "dense"):
            cfg = JointSolverConfig(shards=2, migration_rounds=2, affinity=mode)
            results[mode] = solve_sharded(
                tasks, cluster, config=cfg, candidates=cands, seed=5
            )
        sp, de = results["sparse"], results["dense"]
        assert sp.plan.assignment == de.plan.assignment
        assert sp.plan.features == de.plan.features
        assert sp.plan.latencies == de.plan.latencies
        assert sp.plan.compute_shares == de.plan.compute_shares
        assert sp.plan.bandwidth_shares == de.plan.bandwidth_shares
        assert sp.migration_history == de.migration_history
        assert sp.plan.objective_value == de.plan.objective_value

    def test_invalid_mode_rejected(self, hetero_instance):
        cluster, tasks, cands = hetero_instance
        with pytest.raises(ConfigError):
            AffinityIndex(tasks, cands, cluster, mode="hybrid")
        with pytest.raises(ConfigError):
            JointSolverConfig(affinity="hybrid")


@pytest.fixture(scope="module")
def scenario_instance():
    cluster, tasks = build_scenario("smart_city", num_tasks=24, num_servers=8, seed=2)
    return cluster, tasks, [build_candidates(t) for t in tasks]


class TestNestedSharding:
    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            JointSolverConfig(nested_shards=-1)

    def test_valid_plan_and_deterministic(self, scenario_instance):
        cluster, tasks, cands = scenario_instance
        cfg = JointSolverConfig(shards=2, nested_shards=2, migration_rounds=1)
        a = solve_sharded(tasks, cluster, config=cfg, candidates=cands, seed=1)
        b = solve_sharded(tasks, cluster, config=cfg, candidates=cands, seed=1)
        assert set(a.plan.assignment) == {t.name for t in tasks}
        assert all(np.isfinite(v) for v in a.plan.latencies.values())
        assert a.plan.assignment == b.plan.assignment
        assert a.plan.latencies == b.plan.latencies
        assert a.plan.objective_value == b.plan.objective_value

    def test_region_tasks_stay_in_region(self, scenario_instance):
        # nested racks only re-partition *within* a region: each task's final
        # server must still live in the shard its homing (plus migration)
        # assigned at the outer level
        cluster, tasks, cands = scenario_instance
        cfg = JointSolverConfig(shards=2, nested_shards=2, migration_rounds=0)
        r = solve_sharded(tasks, cluster, config=cfg, candidates=cands, seed=1)
        for i, t in enumerate(tasks):
            srv = r.plan.assignment[t.name]
            if srv is None:
                continue
            home = r.shard_plan.task_shard[i]
            assert srv in r.shard_plan.server_shards[home]


class TestResolveDirty:
    @pytest.fixture(scope="class")
    def prior(self, scenario_instance):
        cluster, tasks, cands = scenario_instance
        cfg = JointSolverConfig(shards=4, migration_rounds=2)
        return cfg, solve_sharded(
            tasks, cluster, config=cfg, candidates=cands, seed=3
        )

    def test_clean_shards_kept_by_identity(self, scenario_instance, prior):
        cluster, tasks, cands = scenario_instance
        cfg, before = prior
        after = resolve_dirty(
            tasks, cluster, before, [1], config=cfg, candidates=cands, seed=3
        )
        for i, t in enumerate(tasks):
            if before.shard_plan.task_shard[i] != 1:
                assert after.plan.assignment[t.name] == before.plan.assignment[t.name]
                assert after.plan.features[t.name] == before.plan.features[t.name]
        assert set(after.plan.assignment) == {t.name for t in tasks}
        assert after.perf.resolve_dirty_s > 0.0

    def test_deterministic(self, scenario_instance, prior):
        cluster, tasks, cands = scenario_instance
        cfg, before = prior
        a = resolve_dirty(
            tasks, cluster, before, [0, 2], config=cfg, candidates=cands, seed=3
        )
        b = resolve_dirty(
            tasks, cluster, before, [0, 2], config=cfg, candidates=cands, seed=3
        )
        assert a.plan.assignment == b.plan.assignment
        assert a.plan.latencies == b.plan.latencies
        assert a.plan.objective_value == b.plan.objective_value

    def test_all_dirty_reproduces_migrationless_fanout(self, scenario_instance):
        # with every shard dirty and the same seed, the delta path must
        # reproduce a fresh fan-out exactly (migration is never re-run, so
        # compare against a migration_rounds=0 solve)
        cluster, tasks, cands = scenario_instance
        cfg = JointSolverConfig(shards=4, migration_rounds=0)
        fresh = solve_sharded(tasks, cluster, config=cfg, candidates=cands, seed=3)
        re = resolve_dirty(
            tasks, cluster, fresh, [0, 1, 2, 3], config=cfg, candidates=cands, seed=3
        )
        assert re.plan.assignment == fresh.plan.assignment
        assert re.plan.features == fresh.plan.features
        assert re.plan.latencies == fresh.plan.latencies
        assert re.plan.objective_value == fresh.plan.objective_value

    def test_validation(self, scenario_instance, prior):
        cluster, tasks, cands = scenario_instance
        cfg, before = prior
        with pytest.raises(ConfigError):
            resolve_dirty(tasks, cluster, before, [], config=cfg, candidates=cands)
        with pytest.raises(ConfigError):
            resolve_dirty(tasks, cluster, before, [4], config=cfg, candidates=cands)
        with pytest.raises(ConfigError):
            resolve_dirty(tasks[:-1], cluster, before, [0], config=cfg)
