"""Surgery evaluation and enumeration."""

import numpy as np
import pytest

from repro.core.plan import SurgeryPlan
from repro.core.surgery import (
    DEFAULT_THRESHOLD_GRID,
    enumerate_features,
    evaluate_plan,
    plan_latency,
)
from repro.errors import PlanError
from repro.network.link import Link
from repro.units import mbps

LINK = Link(mbps(40), rtt_s=10e-3)


def final_only(model, cut):
    return SurgeryPlan(
        kept_exits=(model.num_exits - 1,), thresholds=(0.0,), partition_cut=cut
    )


class TestEvaluatePlan:
    def test_fully_local_features(self, me_resnet18):
        last = len(me_resnet18.backbone.cut_points) - 1
        f = evaluate_plan(me_resnet18, final_only(me_resnet18, last))
        assert f.is_local_only
        assert f.dev_flops == pytest.approx(me_resnet18.final_exit.backbone_flops)
        assert f.srv_flops == 0.0 and f.wire_bytes == 0.0

    def test_full_offload_features(self, me_resnet18):
        f = evaluate_plan(me_resnet18, final_only(me_resnet18, 0))
        assert f.p_offload == pytest.approx(1.0)
        assert f.dev_flops == 0.0
        assert f.srv_flops == pytest.approx(me_resnet18.final_exit.backbone_flops)
        assert f.wire_bytes == pytest.approx(
            me_resnet18.input_bytes + me_resnet18.result_bytes
        )

    def test_flops_conservation(self, me_resnet18):
        """dev + srv FLOPs are independent of WHERE we cut, for the same exit
        distribution (work moves across the cut, it doesn't appear/vanish)."""
        n = len(me_resnet18.backbone.cut_points)
        kept = (1, 4)
        totals = []
        for cut in (0, n // 2, n - 1):
            f = evaluate_plan(
                me_resnet18,
                SurgeryPlan(kept_exits=kept, thresholds=(0.8, 0.0), partition_cut=cut),
            )
            totals.append(f.dev_flops + f.srv_flops)
        # exits-before-cut run on device and their branch flops differ from
        # the identical-exit-distribution invariant only through branch
        # placement, which is the same work; totals must match
        assert max(totals) == pytest.approx(min(totals), rel=1e-9)

    def test_early_exits_reduce_expected_flops(self, me_resnet18):
        n = len(me_resnet18.backbone.cut_points)
        full = evaluate_plan(me_resnet18, final_only(me_resnet18, n - 1))
        exity = evaluate_plan(
            me_resnet18,
            SurgeryPlan(kept_exits=(0, 1, 2, 3, 4), thresholds=(0.5, 0.5, 0.5, 0.5, 0.0), partition_cut=n - 1),
        )
        assert exity.dev_flops < full.dev_flops
        assert exity.accuracy < full.accuracy  # the price of exits

    def test_exit_probs_sum_to_one(self, me_resnet18):
        f = evaluate_plan(
            me_resnet18,
            SurgeryPlan(kept_exits=(1, 3, 4), thresholds=(0.7, 0.7, 0.0), partition_cut=5),
        )
        assert sum(f.exit_probs) == pytest.approx(1.0)

    def test_second_moments_jensen(self, me_resnet18):
        f = evaluate_plan(
            me_resnet18,
            SurgeryPlan(kept_exits=(1, 4), thresholds=(0.8, 0.0), partition_cut=5),
        )
        assert f.dev_flops_sq >= f.dev_flops**2 * (1 - 1e-12)
        assert f.srv_flops_sq >= f.srv_flops**2 * (1 - 1e-12)

    def test_invalid_plan_raises(self, me_resnet18):
        with pytest.raises(PlanError):
            evaluate_plan(
                me_resnet18,
                SurgeryPlan(kept_exits=(1,), thresholds=(0.0,), partition_cut=0),
            )


class TestPlanLatency:
    def test_local_needs_no_server(self, me_resnet18, pi4, latency_model):
        last = len(me_resnet18.backbone.cut_points) - 1
        f = evaluate_plan(me_resnet18, final_only(me_resnet18, last))
        t = plan_latency(
            f.dev_flops, f.srv_flops, f.wire_bytes, f.p_offload, pi4, latency_model
        )
        expected = f.dev_flops / latency_model.throughput(pi4) + pi4.overhead_s
        assert float(t) == pytest.approx(expected)

    def test_offload_requires_server(self, me_resnet18, pi4, latency_model):
        f = evaluate_plan(me_resnet18, final_only(me_resnet18, 0))
        with pytest.raises(PlanError):
            plan_latency(
                f.dev_flops, f.srv_flops, f.wire_bytes, f.p_offload, pi4, latency_model
            )

    def test_share_monotonicity(self, me_resnet18, pi4, edge_gpu, latency_model):
        f = evaluate_plan(me_resnet18, final_only(me_resnet18, 0))

        def lat(x, y):
            return float(
                plan_latency(
                    f.dev_flops,
                    f.srv_flops,
                    f.wire_bytes,
                    f.p_offload,
                    pi4,
                    latency_model,
                    server=edge_gpu,
                    link=LINK,
                    compute_share=x,
                    bandwidth_share=y,
                )
            )

        assert lat(1.0, 1.0) < lat(0.5, 1.0) < lat(0.5, 0.5)

    def test_server_wait_charged_to_offloaded(self, me_resnet18, pi4, edge_gpu, latency_model):
        f = evaluate_plan(me_resnet18, final_only(me_resnet18, 0))
        base = plan_latency(
            f.dev_flops, f.srv_flops, f.wire_bytes, f.p_offload,
            pi4, latency_model, server=edge_gpu, link=LINK,
        )
        waited = plan_latency(
            f.dev_flops, f.srv_flops, f.wire_bytes, f.p_offload,
            pi4, latency_model, server=edge_gpu, link=LINK, server_wait_s=0.1,
        )
        assert float(waited - base) == pytest.approx(0.1 * f.p_offload)

    def test_invalid_shares(self, me_resnet18, pi4, edge_gpu, latency_model):
        f = evaluate_plan(me_resnet18, final_only(me_resnet18, 0))
        with pytest.raises(PlanError):
            plan_latency(
                f.dev_flops, f.srv_flops, f.wire_bytes, f.p_offload,
                pi4, latency_model, server=edge_gpu, link=LINK, compute_share=0.0,
            )


class TestEnumeration:
    def test_covers_extremes(self, me_resnet18):
        feats = enumerate_features(me_resnet18)
        assert any(f.is_local_only for f in feats)
        assert any(f.plan.partition_cut == 0 and len(f.plan.kept_exits) == 1 for f in feats)

    def test_every_subset_contains_final(self, me_resnet18):
        final = me_resnet18.num_exits - 1
        for f in enumerate_features(me_resnet18):
            assert f.plan.kept_exits[-1] == final

    def test_thresholds_from_grid(self, me_resnet18):
        grid = set(DEFAULT_THRESHOLD_GRID) | {0.0}
        for f in enumerate_features(me_resnet18):
            assert set(f.plan.thresholds) <= grid

    def test_matches_evaluate_plan(self, me_resnet18):
        """Vectorized enumeration must agree exactly with single-plan eval."""
        feats = enumerate_features(me_resnet18, threshold_grid=(0.8,), max_cuts=6)
        for f in feats[:: max(1, len(feats) // 15)]:
            ref = evaluate_plan(me_resnet18, f.plan)
            assert f.dev_flops == pytest.approx(ref.dev_flops, rel=1e-9)
            assert f.srv_flops == pytest.approx(ref.srv_flops, rel=1e-9)
            assert f.wire_bytes == pytest.approx(ref.wire_bytes, rel=1e-9)
            assert f.p_offload == pytest.approx(ref.p_offload, abs=1e-12)
            assert f.accuracy == pytest.approx(ref.accuracy, rel=1e-12)

    def test_no_duplicate_plans(self, me_resnet18):
        feats = enumerate_features(me_resnet18)
        keys = [(f.plan.kept_exits, f.plan.thresholds, f.plan.partition_cut) for f in feats]
        assert len(keys) == len(set(keys))

    def test_max_cuts_budget(self, me_alexnet):
        few = enumerate_features(me_alexnet, max_cuts=4)
        many = enumerate_features(me_alexnet, max_cuts=24)
        assert len(few) < len(many)


class TestRefineThresholds:
    def _coarse_best(self, model, pi4, edge_gpu, latency_model, floor=0.6):
        from repro.core.candidates import CandidateSet
        from repro.core.plan import TaskSpec

        task = TaskSpec("t", model, "d", accuracy_floor=floor)
        cs = CandidateSet(task, enumerate_features(model, threshold_grid=(0.8,)))
        cs = cs.filter_accuracy(floor)
        j, lat = cs.best(pi4, latency_model, server=edge_gpu, link=LINK)
        return cs.features[j], lat

    def test_never_worse_and_floor_respected(self, me_resnet18, pi4, edge_gpu, latency_model):
        from repro.core.surgery import refine_thresholds

        feats, lat = self._coarse_best(me_resnet18, pi4, edge_gpu, latency_model)
        plan, refined = refine_thresholds(
            me_resnet18, feats.plan, pi4, latency_model, 0.6,
            server=edge_gpu, link=LINK,
        )
        ref_lat = plan_latency(
            refined.dev_flops, refined.srv_flops, refined.wire_bytes,
            refined.p_offload, pi4, latency_model, server=edge_gpu, link=LINK,
        )
        assert float(ref_lat) <= lat + 1e-12
        assert refined.accuracy >= 0.6 - 1e-12

    def test_improves_coarse_shared_threshold(self, me_resnet18, pi4, edge_gpu, latency_model):
        from repro.core.surgery import refine_thresholds

        feats, lat = self._coarse_best(me_resnet18, pi4, edge_gpu, latency_model, floor=0.55)
        if len(feats.plan.kept_exits) <= 1:
            pytest.skip("coarse best kept no early exits")
        plan, refined = refine_thresholds(
            me_resnet18, feats.plan, pi4, latency_model, 0.55,
            server=edge_gpu, link=LINK,
        )
        ref_lat = plan_latency(
            refined.dev_flops, refined.srv_flops, refined.wire_bytes,
            refined.p_offload, pi4, latency_model, server=edge_gpu, link=LINK,
        )
        assert float(ref_lat) < lat  # the shared threshold binds here

    def test_noop_for_final_only_plan(self, me_resnet18, pi4, latency_model):
        from repro.core.surgery import refine_thresholds

        p = final_only(me_resnet18, len(me_resnet18.backbone.cut_points) - 1)
        plan, feats = refine_thresholds(
            me_resnet18, p, pi4, latency_model, 0.6,
        )
        assert plan == p

    def test_invalid_floor_rejected(self, me_resnet18, pi4, latency_model):
        from repro.core.surgery import refine_thresholds
        from repro.errors import PlanError

        p = final_only(me_resnet18, 0)
        with pytest.raises(PlanError):
            refine_thresholds(me_resnet18, p, pi4, latency_model, 0.0)

    def test_joint_solver_refinement_recovers_coarse_grid(
        self, small_cluster, small_tasks
    ):
        from repro.core.candidates import build_candidates
        from repro.core.joint import JointOptimizer, JointSolverConfig

        cands = [build_candidates(t, threshold_grid=(0.8,)) for t in small_tasks]
        off = JointOptimizer(
            small_cluster, config=JointSolverConfig(refine_thresholds=False)
        ).solve(small_tasks, candidates=cands, seed=0)
        on = JointOptimizer(
            small_cluster, config=JointSolverConfig(refine_thresholds=True)
        ).solve(small_tasks, candidates=cands, seed=0)
        assert on.plan.objective_value <= off.plan.objective_value + 1e-12
