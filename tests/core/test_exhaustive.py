"""Exhaustive optimum on tiny instances."""

import numpy as np
import pytest

from repro.core.candidates import build_candidates
from repro.core.distributed import best_response_offloading
from repro.core.exhaustive import exhaustive_optimum
from repro.core.joint import JointOptimizer
from repro.core.plan import TaskSpec
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def tiny_instance(small_cluster, me_alexnet):
    tasks = [
        TaskSpec("t0", me_alexnet, "dev0", deadline_s=0.3, accuracy_floor=0.5, arrival_rate=2.0),
        TaskSpec("t1", me_alexnet, "dev1", deadline_s=0.3, accuracy_floor=0.5, arrival_rate=2.0),
    ]
    cands = [
        build_candidates(t, threshold_grid=(0.8,), max_cuts=4).subsample(8) for t in tasks
    ]
    return tasks, cands


class TestExhaustive:
    def test_lower_bounds_heuristics(self, small_cluster, tiny_instance):
        from repro.core.joint import JointSolverConfig

        tasks, cands = tiny_instance
        opt = exhaustive_optimum(tasks, small_cluster, candidates=cands)
        # same search space: threshold refinement off (it may beat the
        # enumerated optimum by leaving the candidate set)
        bcd = JointOptimizer(
            small_cluster, config=JointSolverConfig(refine_thresholds=False)
        ).solve(tasks, candidates=cands).plan
        br = best_response_offloading(tasks, small_cluster, candidates=cands, seed=0).plan
        assert opt.objective_value <= bcd.objective_value + 1e-9
        assert opt.objective_value <= br.objective_value + 1e-9

    def test_refinement_can_beat_enumerated_optimum(self, small_cluster, tiny_instance):
        tasks, cands = tiny_instance
        opt = exhaustive_optimum(tasks, small_cluster, candidates=cands)
        refined = JointOptimizer(small_cluster).solve(tasks, candidates=cands).plan
        assert refined.objective_value <= opt.objective_value + 1e-9

    def test_feasible_output(self, small_cluster, tiny_instance):
        tasks, cands = tiny_instance
        opt = exhaustive_optimum(tasks, small_cluster, candidates=cands)
        assert np.isfinite(opt.objective_value)
        for t in tasks:
            assert np.isfinite(opt.latencies[t.name])

    def test_budget_guard(self, small_cluster, small_tasks, small_candidates):
        with pytest.raises(ConfigError):
            exhaustive_optimum(
                small_tasks, small_cluster, candidates=small_candidates, budget=10
            )

    def test_empty_tasks_raise(self, small_cluster):
        with pytest.raises(ConfigError):
            exhaustive_optimum([], small_cluster)
