"""Plan data model: TaskSpec, SurgeryPlan, PlanFeatures validation."""

import pytest

from repro.core.plan import PlanFeatures, SurgeryPlan, TaskSpec
from repro.errors import PlanError


class TestTaskSpec:
    def test_valid(self, me_resnet18):
        t = TaskSpec("t", me_resnet18, "dev0")
        assert t.weight == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(deadline_s=0.0),
            dict(accuracy_floor=0.0),
            dict(accuracy_floor=1.5),
            dict(arrival_rate=0.0),
            dict(weight=-1.0),
        ],
    )
    def test_invalid(self, me_resnet18, kwargs):
        base = dict(name="t", model=me_resnet18, device_name="dev0")
        base.update(kwargs)
        with pytest.raises(PlanError):
            TaskSpec(**base)


class TestSurgeryPlan:
    def test_valid(self):
        p = SurgeryPlan(kept_exits=(1, 4), thresholds=(0.8, 0.0), partition_cut=3)
        assert p.partition_cut == 3

    def test_length_mismatch(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(1, 4), thresholds=(0.0,), partition_cut=0)

    def test_empty_exits(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(), thresholds=(), partition_cut=0)

    def test_unsorted_exits(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(4, 1), thresholds=(0.5, 0.0), partition_cut=0)

    def test_duplicate_exits(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(1, 1), thresholds=(0.5, 0.0), partition_cut=0)

    def test_final_threshold_nonzero(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(1, 4), thresholds=(0.5, 0.5), partition_cut=0)

    def test_threshold_out_of_range(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(1, 4), thresholds=(1.0, 0.0), partition_cut=0)

    def test_negative_cut(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(4,), thresholds=(0.0,), partition_cut=-1)

    def test_validate_against_requires_final_exit(self, me_resnet18):
        p = SurgeryPlan(kept_exits=(1, 2), thresholds=(0.5, 0.0), partition_cut=0)
        with pytest.raises(PlanError):
            p.validate_against(me_resnet18)

    def test_validate_against_cut_range(self, me_resnet18):
        n_cuts = len(me_resnet18.backbone.cut_points)
        p = SurgeryPlan(kept_exits=(4,), thresholds=(0.0,), partition_cut=n_cuts)
        with pytest.raises(PlanError):
            p.validate_against(me_resnet18)

    def test_validate_against_ok(self, me_resnet18):
        SurgeryPlan(kept_exits=(0, 4), thresholds=(0.7, 0.0), partition_cut=2).validate_against(
            me_resnet18
        )


class TestPlanFeatures:
    PLAN = SurgeryPlan(kept_exits=(4,), thresholds=(0.0,), partition_cut=0)

    def make(self, **kw):
        base = dict(
            plan=self.PLAN,
            dev_flops=0.0,
            srv_flops=1e9,
            wire_bytes=1e5,
            p_offload=1.0,
            accuracy=0.7,
        )
        base.update(kw)
        return PlanFeatures(**base)

    def test_valid(self):
        f = self.make()
        assert not f.is_local_only

    def test_local_only_detection(self):
        f = self.make(srv_flops=0.0, wire_bytes=0.0, p_offload=0.0, dev_flops=1e9)
        assert f.is_local_only

    def test_negative_cost(self):
        with pytest.raises(PlanError):
            self.make(dev_flops=-1.0)

    def test_p_offload_range(self):
        with pytest.raises(PlanError):
            self.make(p_offload=1.5)

    def test_accuracy_range(self):
        with pytest.raises(PlanError):
            self.make(accuracy=0.0)

    def test_impossible_moments(self):
        with pytest.raises(PlanError):
            self.make(srv_flops=2e9, srv_flops_sq=1e9)  # E[X^2] << E[X]^2

    def test_zero_second_moment_allowed(self):
        # zero means "not provided"; legacy constructors still work
        f = self.make(srv_flops=2e9, srv_flops_sq=0.0)
        assert f.srv_flops_sq == 0.0
