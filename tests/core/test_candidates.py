"""Candidate sets: filtering, pruning, vectorized evaluation."""

import numpy as np
import pytest

from repro.core.candidates import CandidateSet, build_candidates
from repro.core.plan import TaskSpec
from repro.core.surgery import enumerate_features
from repro.errors import InfeasibleError, PlanError
from repro.network.link import Link
from repro.units import mbps

LINK = Link(mbps(40), rtt_s=10e-3)


@pytest.fixture(scope="module")
def task(me_resnet18):
    return TaskSpec("t", me_resnet18, "dev0", deadline_s=0.3, accuracy_floor=0.6)


@pytest.fixture(scope="module")
def full_set(task):
    return CandidateSet(task, enumerate_features(task.model))


class TestBuildAndFilter:
    def test_build_candidates_prunes(self, task, full_set):
        cs = build_candidates(task)
        assert 0 < len(cs) < len(full_set)

    def test_accuracy_filter(self, task, full_set):
        cs = full_set.filter_accuracy(0.65)
        assert np.all(cs.accuracy >= 0.65 - 1e-12)

    def test_accuracy_filter_infeasible(self, full_set):
        with pytest.raises(InfeasibleError):
            full_set.filter_accuracy(0.99)

    def test_local_only_subset(self, full_set):
        local = full_set.local_only()
        assert all(f.is_local_only for f in local.features)

    def test_empty_set_raises(self, task):
        with pytest.raises(PlanError):
            CandidateSet(task, [])

    def test_arrays_match_features(self, full_set):
        i = len(full_set) // 2
        f = full_set.features[i]
        assert full_set.dev_flops[i] == f.dev_flops
        assert full_set.accuracy[i] == f.accuracy


class TestPruning:
    def test_pruned_plans_are_undominated(self, full_set):
        cs = full_set.pruned()
        cost = np.stack([cs.dev_flops, cs.srv_flops, cs.wire_bytes, cs.p_offload], axis=1)
        n = len(cs)
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                dominates = cs.accuracy[j] >= cs.accuracy[i] - 1e-12 and np.all(
                    cost[j] <= cost[i] + 1e-9
                )
                strictly = cs.accuracy[j] > cs.accuracy[i] + 1e-12 or np.any(
                    cost[j] < cost[i] - 1e-9
                )
                assert not (dominates and strictly), (i, j)

    def test_pruning_preserves_best_latency(self, full_set, pi4, edge_gpu, latency_model):
        """For ANY allocation, the pruned set achieves the same best latency
        subject to the same accuracy — dominance must be allocation-safe."""
        pruned = full_set.pruned()
        for x, y in [(1.0, 1.0), (0.3, 0.7), (0.05, 0.05)]:
            lat_full = full_set.latencies(
                pi4, latency_model, server=edge_gpu, link=LINK,
                compute_share=x, bandwidth_share=y,
            )
            lat_pruned = pruned.latencies(
                pi4, latency_model, server=edge_gpu, link=LINK,
                compute_share=x, bandwidth_share=y,
            )
            for floor in (0.55, 0.62, 0.68):
                ok_full = lat_full[full_set.accuracy >= floor]
                ok_pruned = lat_pruned[pruned.accuracy >= floor]
                assert ok_pruned.min() == pytest.approx(ok_full.min(), rel=1e-9)

    def test_subsample_bounds_size(self, full_set):
        small = full_set.subsample(7)
        assert len(small) <= 7

    def test_subsample_noop_when_small(self, full_set):
        assert len(full_set.subsample(10**6)) == len(full_set)

    def test_subsample_invalid(self, full_set):
        with pytest.raises(PlanError):
            full_set.subsample(0)


class TestEvaluation:
    def test_local_eval_infinite_for_offload_plans(self, full_set, pi4, latency_model):
        lat = full_set.latencies(pi4, latency_model)
        offloaders = full_set.p_offload > 0
        assert np.all(np.isinf(lat[offloaders]))
        assert np.all(np.isfinite(lat[~offloaders]))

    def test_best_returns_argmin(self, full_set, pi4, edge_gpu, latency_model):
        idx, lat = full_set.best(pi4, latency_model, server=edge_gpu, link=LINK)
        all_lat = full_set.latencies(pi4, latency_model, server=edge_gpu, link=LINK)
        assert lat == pytest.approx(float(all_lat.min()))
        assert all_lat[idx] == pytest.approx(lat)

    def test_more_compute_share_never_hurts(self, full_set, pi4, edge_gpu, latency_model):
        lo = full_set.latencies(
            pi4, latency_model, server=edge_gpu, link=LINK, compute_share=0.2
        )
        hi = full_set.latencies(
            pi4, latency_model, server=edge_gpu, link=LINK, compute_share=0.9
        )
        assert np.all(hi <= lo + 1e-12)
