"""Analytic queueing formulas."""

import numpy as np
import pytest

from repro.core.queueing import (
    aggregate_server_load,
    mg1_wait,
    mg1_wait_vec,
    mm1_response,
    mm1_wait,
    superposed_mg1_wait,
    utilization,
)
from repro.errors import ConfigError


class TestMM1:
    def test_known_value(self):
        # lambda=1, mu=2: W = rho/(mu-lambda) = 0.5
        assert mm1_wait(1.0, 2.0) == pytest.approx(0.5)

    def test_response_is_wait_plus_service(self):
        lam, mu = 1.0, 2.0
        assert mm1_response(lam, mu) == pytest.approx(mm1_wait(lam, mu) + 1.0 / mu)

    def test_overload_is_inf(self):
        assert mm1_wait(2.0, 2.0) == float("inf")
        assert mm1_response(3.0, 2.0) == float("inf")

    def test_zero_arrivals(self):
        assert mm1_wait(0.0, 2.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            mm1_wait(-1.0, 2.0)
        with pytest.raises(ConfigError):
            mm1_wait(1.0, 0.0)


class TestMG1:
    def test_md1_is_half_mm1(self):
        # deterministic service: E[S^2] = E[S]^2 -> W = rho*s/(2(1-rho)),
        # exactly half the M/M/1 wait at equal mean service
        lam, s = 1.0, 0.4
        md1 = mg1_wait(lam, s, s * s)
        mm1 = mg1_wait(lam, s, 2 * s * s)  # exponential: E[S^2] = 2 E[S]^2
        assert md1 == pytest.approx(mm1 / 2)

    def test_mm1_consistency(self):
        lam, mu = 1.0, 2.0
        s = 1.0 / mu
        assert mg1_wait(lam, s, 2 * s * s) == pytest.approx(mm1_wait(lam, mu))

    def test_overload_inf(self):
        assert mg1_wait(3.0, 0.5, 0.25) == float("inf")

    def test_zero_arrivals(self):
        assert mg1_wait(0.0, 0.5, 0.25) == 0.0

    def test_impossible_moments_raise(self):
        with pytest.raises(ConfigError):
            mg1_wait(1.0, 0.5, 0.1)

    def test_float_noise_tolerated(self):
        s = 0.029231
        mg1_wait(1.0, s, s * s * (1 - 1e-12))  # must not raise

    def test_variance_increases_wait(self):
        lam, s = 1.0, 0.4
        assert mg1_wait(lam, s, 4 * s * s) > mg1_wait(lam, s, s * s)

    def test_vectorized_matches_scalar(self):
        lam = np.array([0.0, 1.0, 3.0])
        s = np.array([0.4, 0.4, 0.4])
        s2 = s * s
        vec = mg1_wait_vec(lam, s, s2)
        assert vec[0] == 0.0
        assert vec[1] == pytest.approx(mg1_wait(1.0, 0.4, 0.16))
        assert vec[2] == float("inf")


class TestAggregates:
    def test_utilization(self):
        assert utilization(2.0, 0.25) == pytest.approx(0.5)

    def test_aggregate_server_load(self):
        assert aggregate_server_load(np.array([1.0, 2.0]), np.array([0.1, 0.2])) == pytest.approx(
            0.5
        )

    def test_superposed_wait_matches_single_stream(self):
        # one stream == plain P-K
        w = superposed_mg1_wait(np.array([2.0]), np.array([0.2]), np.array([0.05]))
        assert w == pytest.approx(mg1_wait(2.0, 0.2, 0.05))

    def test_superposed_zero_traffic(self):
        assert superposed_mg1_wait(np.array([0.0]), np.array([0.2]), np.array([0.05])) == 0.0

    def test_negative_inputs_raise(self):
        with pytest.raises(ConfigError):
            aggregate_server_load(np.array([-1.0]), np.array([0.1]))
