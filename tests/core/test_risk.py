"""Chance-constrained deadline support: κ(ε), RiskConfig, variance algebra,
buffered latency kernels, and the risk-off bit-identity contract."""

import math

import numpy as np
import pytest

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer, JointSolverConfig
from repro.core.risk import RiskConfig, kappa, stage_std, wait_std
from repro.devices.latency import LatencyModel
from repro.errors import ConfigError
from repro.workloads.scenarios import build_scenario


class TestKappa:
    def test_cantelli_closed_form(self):
        for eps in (0.01, 0.05, 0.1, 0.5):
            assert kappa(eps, "cantelli") == pytest.approx(
                math.sqrt((1 - eps) / eps)
            )

    def test_cantelli_decreasing_in_epsilon(self):
        ks = [kappa(e) for e in (0.01, 0.05, 0.1, 0.3)]
        assert ks == sorted(ks, reverse=True)

    def test_gaussian_quantile(self):
        from scipy.special import ndtri

        assert kappa(0.05, "gaussian") == pytest.approx(float(ndtri(0.95)))

    def test_gaussian_clamped_at_zero(self):
        assert kappa(0.9, "gaussian") == 0.0

    def test_gaussian_tighter_than_cantelli(self):
        for eps in (0.01, 0.05, 0.1):
            assert kappa(eps, "gaussian") < kappa(eps, "cantelli")

    def test_none_is_zero(self):
        assert kappa(0.05, "none") == 0.0

    def test_bad_epsilon(self):
        with pytest.raises(ConfigError):
            kappa(0.0)
        with pytest.raises(ConfigError):
            kappa(1.0)

    def test_bad_buffer(self):
        with pytest.raises(ConfigError):
            kappa(0.05, "chebyshev")


class TestRiskConfig:
    def test_derived_fields(self):
        r = RiskConfig(epsilon=0.05, service_noise=0.2)
        assert r.kappa == pytest.approx(math.sqrt(19))
        assert r.rel_var == pytest.approx(math.expm1(0.04))
        assert r.active

    def test_none_buffer_inactive(self):
        r = RiskConfig(buffer="none")
        assert not r.active
        assert r.kappa == 0.0

    def test_none_buffer_skips_epsilon_check(self):
        # buffer="none" is the risk-off switch; epsilon is irrelevant there
        assert not RiskConfig(epsilon=2.0, buffer="none").active

    def test_bad_buffer(self):
        with pytest.raises(ConfigError):
            RiskConfig(buffer="bogus")

    def test_bad_epsilon(self):
        with pytest.raises(ConfigError):
            RiskConfig(epsilon=0.0)

    def test_negative_noise(self):
        with pytest.raises(ConfigError):
            RiskConfig(service_noise=-0.1)


class TestVarianceAlgebra:
    def test_deterministic_stage_has_zero_std(self):
        # constant work, always visited, no jitter: Var X = 0
        assert stage_std(2.0, 4.0, 0.0, 1.0, 0.0) == pytest.approx(0.0)

    def test_jitter_inflates_std(self):
        assert stage_std(2.0, 4.0, 0.0, 1.0, 0.05) > 0.0

    def test_exit_mix_variance(self):
        # W in {1, 3} equiprobable: E[W]=2, E[W^2]=5, Var=1
        assert stage_std(2.0, 5.0, 0.0, 1.0, 0.0) == pytest.approx(1.0)

    def test_rtt_term_bernoulli(self):
        # pure overhead visited w.p. p: std = rtt * sqrt(p(1-p))
        assert stage_std(0.0, 0.0, 0.1, 0.25, 0.0) == pytest.approx(
            0.1 * math.sqrt(0.25 * 0.75)
        )
        assert stage_std(0.0, 0.0, 0.1, 1.0, 0.0) == pytest.approx(0.0)

    def test_wait_std_surrogate(self):
        # E[W^2] = 2*Wbar*(m+Wbar) for M/M/1
        assert wait_std(0.5, 0.1) == pytest.approx(math.sqrt(2 * 0.5 * 0.6))

    def test_wait_std_zero_and_nonfinite(self):
        assert wait_std(0.0, 0.1) == 0.0
        assert wait_std(float("inf"), 0.1) == 0.0
        assert wait_std(float("nan"), 0.1) == 0.0

    def test_vectorized(self):
        out = stage_std(
            np.array([2.0, 2.0]), np.array([4.0, 5.0]), 0.0, 1.0, 0.0
        )
        assert out.tolist() == pytest.approx([0.0, 1.0])


class TestBufferedLatencies:
    @pytest.fixture(scope="class")
    def instance(self):
        cluster, tasks = build_scenario("smart_city", num_tasks=4, seed=0)
        return cluster, tasks

    def _candidate_latencies(self, cluster, task, risk=None):
        cands = build_candidates(task)
        device = cluster.by_name(task.device_name)
        server = cluster.servers[0]
        link = cluster.link(task.device_name, server.name)
        return cands.latencies(
            device, LatencyModel(), server, link,
            arrival_rate=task.arrival_rate, risk=risk,
        )

    def test_buffered_candidate_latencies_dominate(self, instance):
        cluster, tasks = instance
        plain = self._candidate_latencies(cluster, tasks[0])
        buffered = self._candidate_latencies(
            cluster, tasks[0], risk=RiskConfig(epsilon=0.05, service_noise=0.1)
        )
        finite = np.isfinite(plain)
        assert finite.any()
        assert np.all(buffered[finite] >= plain[finite])

    def test_buffer_shrinks_with_epsilon(self, instance):
        cluster, tasks = instance
        tight = self._candidate_latencies(
            cluster, tasks[0], risk=RiskConfig(epsilon=0.01, service_noise=0.1)
        )
        loose = self._candidate_latencies(
            cluster, tasks[0], risk=RiskConfig(epsilon=0.2, service_noise=0.1)
        )
        finite = np.isfinite(tight)
        assert np.all(tight[finite] >= loose[finite])

    def test_none_buffer_bit_identical_solve(self, instance):
        cluster, tasks = instance
        plain = JointOptimizer(cluster).solve(tasks, seed=0)
        off = JointOptimizer(
            cluster, config=JointSolverConfig(risk=RiskConfig(buffer="none"))
        ).solve(tasks, seed=0)
        assert plain.plan.assignment == off.plan.assignment
        assert plain.plan.latencies == off.plan.latencies
        assert plain.plan.objective_value == off.plan.objective_value
        assert plain.history == off.history

    def test_zero_kappa_active_config_identical_solve(self, instance):
        # gaussian buffer at eps >= 0.5 clamps kappa to 0: the buffered code
        # paths run (sigma is computed) but add exactly 0, so the solve must
        # reproduce the risk-free plan to the last bit
        cluster, tasks = instance
        plain = JointOptimizer(cluster).solve(tasks, seed=0)
        zero = JointOptimizer(
            cluster,
            config=JointSolverConfig(
                risk=RiskConfig(epsilon=0.5, buffer="gaussian", service_noise=0.1)
            ),
        ).solve(tasks, seed=0)
        assert plain.plan.latencies == zero.plan.latencies
        assert plain.plan.objective_value == zero.plan.objective_value
