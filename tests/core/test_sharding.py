"""Shard plans, shard views, and task homing."""

import pytest

from repro.core.sharding import (
    AffinityIndex,
    ShardPlan,
    ShardView,
    home_tasks,
    make_shard_plan,
    partition_servers,
)
from repro.errors import ConfigError


class TestPartitionServers:
    def test_contiguous_blocks(self):
        assert partition_servers(6, 3) == ((0, 1), (2, 3), (4, 5))

    def test_contiguous_uneven(self):
        # remainder goes to the leading shards, sizes differ by at most one
        assert partition_servers(7, 3) == ((0, 1, 2), (3, 4), (5, 6))

    def test_interleave_round_robin(self):
        assert partition_servers(6, 2, "interleave") == ((0, 2, 4), (1, 3, 5))

    def test_covers_every_server_once(self):
        for shard_by in ("contiguous", "interleave"):
            parts = partition_servers(10, 4, shard_by)
            flat = [s for shard in parts for s in shard]
            assert sorted(flat) == list(range(10))

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(num_servers=4, shards=0),
            dict(num_servers=4, shards=5),
            dict(num_servers=4, shards=2, shard_by="hash"),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            partition_servers(**kwargs)


class TestShardPlan:
    def test_round_trips_tasks(self):
        plan = ShardPlan(((0, 1), (2,)), (0, 1, 0, 1))
        assert plan.num_shards == 2
        assert plan.num_servers == 3
        assert plan.tasks_of(0) == [0, 2]
        assert plan.tasks_of(1) == [1, 3]
        assert plan.shard_of_server(2) == 1

    def test_with_task_shard(self):
        plan = ShardPlan(((0,), (1,)), (0, 0))
        moved = plan.with_task_shard((0, 1))
        assert moved.task_shard == (0, 1)
        assert moved.server_shards == plan.server_shards

    @pytest.mark.parametrize(
        "server_shards,task_shard",
        [
            ((), ()),  # no shards
            (((0,), ()), ()),  # empty shard
            (((0, 1), (1,)), ()),  # duplicate server
            (((0,), (2,)), ()),  # gap: not a partition of 0..1
            (((0,), (1,)), (2,)),  # task homed to unknown shard
        ],
    )
    def test_invalid(self, server_shards, task_shard):
        with pytest.raises(ConfigError):
            ShardPlan(server_shards, task_shard)


class TestShardView:
    def test_subsets_without_copying(self, small_cluster):
        view = ShardView(small_cluster, (1,))
        assert view.num_servers == 1
        assert view.servers[0] is small_cluster.servers[1]
        # name/link lookups delegate to the parent's validated maps
        assert view.by_name("dev0") is small_cluster.by_name("dev0")
        assert view.link("dev0", view.servers[0].name) is small_cluster.link(
            "dev0", small_cluster.servers[1].name
        )

    def test_local_global_round_trip(self, small_cluster):
        view = ShardView(small_cluster, (1, 0))
        assert view.to_global(0) == 1
        assert view.to_local(1) == 0
        assert view.to_global(None) is None
        assert view.to_local(None) is None
        assert view.server_index(small_cluster.servers[0].name) == 1

    def test_rejects_foreign_server(self, small_cluster):
        view = ShardView(small_cluster, (0,))
        with pytest.raises(ConfigError):
            view.to_local(1)

    @pytest.mark.parametrize("ids", [(), (0, 0), (5,), (-1,)])
    def test_invalid_ids(self, small_cluster, ids):
        with pytest.raises(ConfigError):
            ShardView(small_cluster, ids)


class TestHoming:
    def test_every_task_homed(self, small_cluster, small_tasks, small_candidates):
        shards = partition_servers(small_cluster.num_servers, 2)
        homing = home_tasks(small_tasks, small_candidates, small_cluster, shards)
        assert len(homing) == len(small_tasks)
        assert all(0 <= h < 2 for h in homing)

    def test_deterministic(self, small_cluster, small_tasks, small_candidates):
        shards = partition_servers(small_cluster.num_servers, 2)
        a = home_tasks(small_tasks, small_candidates, small_cluster, shards)
        b = home_tasks(small_tasks, small_candidates, small_cluster, shards)
        assert a == b

    def test_capacity_cap_spreads_load(self, small_cluster, small_tasks, small_candidates):
        # both tasks prefer the GPU shard, but the per-shard cap
        # (ceil(2 * 1/2) = 1) forces the second onto the other shard
        shards = partition_servers(small_cluster.num_servers, 2)
        homing = home_tasks(small_tasks, small_candidates, small_cluster, shards)
        assert sorted(homing) == [0, 1]

    def test_affinity_index_reuse_matches(
        self, small_cluster, small_tasks, small_candidates
    ):
        shards = partition_servers(small_cluster.num_servers, 2)
        idx = AffinityIndex(small_tasks, small_candidates, small_cluster)
        assert home_tasks(
            small_tasks, small_candidates, small_cluster, shards, affinity=idx
        ) == home_tasks(small_tasks, small_candidates, small_cluster, shards)


class TestAffinityIndex:
    def test_templates_deduplicate_shared_candidates(
        self, small_cluster, small_tasks, small_candidates
    ):
        # duplicating a task (same candidate set, same device) must not grow
        # the template count or the bounds matrix
        tasks = list(small_tasks) + [small_tasks[0]]
        cands = list(small_candidates) + [small_candidates[0]]
        idx = AffinityIndex(tasks, cands, small_cluster)
        base = AffinityIndex(small_tasks, small_candidates, small_cluster)
        assert idx.bounds.shape == base.bounds.shape
        assert idx.template_of[-1] == idx.template_of[0]

    def test_foreign_excludes_home_shard(
        self, small_cluster, small_tasks, small_candidates
    ):
        idx = AffinityIndex(small_tasks, small_candidates, small_cluster)
        shards = partition_servers(small_cluster.num_servers, 2)
        fval, fsrv = idx.foreign_mins(shards)
        sval, ssrv = idx.shard_mins(shards)
        for tpl in range(idx.bounds.shape[0]):
            for sh, shard in enumerate(shards):
                assert fsrv[tpl, sh] not in shard
                assert ssrv[tpl, sh] in shard
                assert fval[tpl, sh] == min(
                    idx.bounds[tpl, s]
                    for s in range(small_cluster.num_servers)
                    if s not in shard
                )


class TestMakeShardPlan:
    def test_single_shard_is_trivial(self, small_cluster, small_tasks, small_candidates):
        plan = make_shard_plan(small_tasks, small_candidates, small_cluster, 1)
        assert plan.num_shards == 1
        assert plan.task_shard == (0,) * len(small_tasks)

    def test_multi_shard(self, small_cluster, small_tasks, small_candidates):
        plan = make_shard_plan(
            small_tasks, small_candidates, small_cluster, 2, "interleave"
        )
        assert plan.num_shards == 2
        assert plan.shard_by == "interleave"
