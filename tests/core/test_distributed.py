"""Best-response offloading game."""

import numpy as np
import pytest

from repro.core.distributed import best_response_offloading
from repro.core.joint import JointOptimizer
from repro.errors import ConfigError


class TestBestResponse:
    def test_produces_complete_plan(self, small_cluster, small_tasks, small_candidates):
        res = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=0
        )
        assert set(res.plan.latencies) == {t.name for t in small_tasks}
        assert np.isfinite(res.plan.objective_value)

    def test_converges_to_equilibrium(self, small_cluster, small_tasks, small_candidates):
        res = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=0
        )
        assert res.converged
        assert res.rounds <= 30

    def test_close_to_centralized(self, small_cluster, small_tasks, small_candidates):
        br = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=0
        )
        bcd = JointOptimizer(small_cluster).solve(
            small_tasks, candidates=small_candidates, seed=0
        )
        gap = br.plan.objective_value / bcd.plan.objective_value
        assert gap < 1.25  # "close-to-optimal" guarantee band

    def test_history_recorded(self, small_cluster, small_tasks, small_candidates):
        res = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=0
        )
        assert len(res.history) == res.rounds + 1

    def test_final_history_matches_objective(self, small_cluster, small_tasks, small_candidates):
        res = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=0
        )
        assert res.history[-1] == pytest.approx(res.plan.objective_value)

    def test_deterministic_given_seed(self, small_cluster, small_tasks, small_candidates):
        a = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=3
        )
        b = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=3
        )
        assert a.plan.objective_value == b.plan.objective_value

    def test_empty_tasks_raise(self, small_cluster):
        with pytest.raises(ConfigError):
            best_response_offloading([], small_cluster)

    def test_candidates_mismatch_raises(self, small_cluster, small_tasks, small_candidates):
        with pytest.raises(ConfigError):
            best_response_offloading(
                small_tasks, small_cluster, candidates=small_candidates[:1]
            )

    def test_accuracy_floors_respected(self, small_cluster, small_tasks, small_candidates):
        res = best_response_offloading(
            small_tasks, small_cluster, candidates=small_candidates, seed=0
        )
        for t in small_tasks:
            assert res.plan.features[t.name].accuracy >= t.accuracy_floor - 1e-9


class TestBestResponseAtScale:
    """The decentralized arm of E17: the game must stay bounded and exactly
    reproducible at the 1k-task scale the sharded control plane targets."""

    @pytest.fixture(scope="class")
    def scale_result(self):
        import dataclasses

        from repro.core.candidates import build_candidates
        from repro.workloads.scenarios import build_scenario

        cluster, tasks = build_scenario(
            "smart_city", num_tasks=1024, num_servers=32,
            server_spread=4.0, seed=0,
        )
        # rate-scaled for queue stability at this density (E17 precedent)
        tasks = [
            dataclasses.replace(t, arrival_rate=t.arrival_rate * 0.1)
            for t in tasks
        ]
        cands = [build_candidates(t) for t in tasks]
        res = best_response_offloading(
            tasks, cluster, candidates=cands, max_rounds=2, seed=0
        )
        return tasks, cluster, cands, res

    def test_rounds_bounded_and_game_improves(self, scale_result):
        _, _, _, res = scale_result
        assert res.rounds <= 2
        assert len(res.history) == res.rounds + 1
        # players move selfishly, so the *global* objective need not fall
        # every round — but it must collapse from the all-local start
        assert res.history[-1] < res.history[0] * 0.5

    def test_complete_finite_plan(self, scale_result):
        tasks, _, _, res = scale_result
        assert set(res.plan.latencies) == {t.name for t in tasks}
        assert np.isfinite(res.plan.objective_value)

    def test_deterministic_given_seed(self, scale_result):
        tasks, cluster, cands, res = scale_result
        again = best_response_offloading(
            tasks, cluster, candidates=cands, max_rounds=2, seed=0
        )
        assert again.plan.objective_value == res.plan.objective_value
        assert again.history == res.history
        assert again.plan.assignment == res.plan.assignment
