"""Online re-optimization controller."""

import numpy as np
import pytest

from repro.core.online import (
    ControllerConfig,
    EnvironmentSample,
    OnlineController,
)
from repro.core.sharding import ShardPlan
from repro.errors import ConfigError
from repro.telemetry.drift import DriftConfig
from repro.telemetry.metrics import MetricsRegistry
from repro.units import mbps


@pytest.fixture()
def controller(small_cluster, small_tasks, small_candidates):
    return OnlineController(
        small_cluster,
        small_tasks,
        candidates=small_candidates,
        config=ControllerConfig(replan_threshold=0.3, min_replan_interval_s=1.0),
    )


def all_links(cluster, bw):
    return {k: bw for k in cluster.topology.links}


class TestConfigValidation:
    def test_negative_threshold(self):
        with pytest.raises(ConfigError):
            ControllerConfig(replan_threshold=-0.1)

    def test_negative_interval(self):
        with pytest.raises(ConfigError):
            ControllerConfig(min_replan_interval_s=-1.0)

    def test_sample_validation(self):
        with pytest.raises(ConfigError):
            EnvironmentSample(time_s=-1.0)
        with pytest.raises(ConfigError):
            EnvironmentSample(time_s=0.0, arrival_rates={"t": 0.0})


class TestController:
    def test_initial_plan_solved(self, controller, small_tasks):
        assert set(controller.plan.latencies) == {t.name for t in small_tasks}
        assert np.isfinite(controller.plan.objective_value)
        assert controller.replan_count == 0

    def test_small_drift_no_replan(self, controller, small_cluster):
        fired = controller.observe(
            EnvironmentSample(
                time_s=5.0,
                bandwidth_bps=all_links(small_cluster, mbps(40) * 1.1),
            )
        )
        assert not fired
        assert controller.replan_count == 0

    def test_large_drift_replans(self, controller, small_cluster):
        fired = controller.observe(
            EnvironmentSample(
                time_s=5.0, bandwidth_bps=all_links(small_cluster, mbps(2))
            )
        )
        assert fired
        assert controller.replan_count == 1

    def test_hysteresis_blocks_flapping(self, small_cluster, small_tasks, small_candidates):
        c = OnlineController(
            small_cluster,
            small_tasks,
            candidates=small_candidates,
            config=ControllerConfig(replan_threshold=0.1, min_replan_interval_s=100.0),
        )
        assert not c.observe(
            EnvironmentSample(time_s=1.0, bandwidth_bps=all_links(small_cluster, mbps(5)))
        )
        assert "hysteresis" in c.events[-1].reason

    def test_arrival_drift_replans(self, controller, small_tasks):
        fired = controller.observe(
            EnvironmentSample(
                time_s=5.0,
                arrival_rates={small_tasks[0].name: small_tasks[0].arrival_rate * 3},
            )
        )
        assert fired

    def test_replan_adapts_to_fade(self, controller, small_cluster):
        before = controller.plan
        controller.observe(
            EnvironmentSample(
                time_s=5.0, bandwidth_bps=all_links(small_cluster, mbps(0.5))
            )
        )
        after = controller.plan
        # the faded plan ships (weakly) fewer expected bytes per request
        wire_before = sum(f.wire_bytes for f in before.features.values())
        wire_after = sum(f.wire_bytes for f in after.features.values())
        assert wire_after <= wire_before + 1e-9

    def test_unknown_link_rejected(self, controller):
        with pytest.raises(ConfigError):
            controller.observe(
                EnvironmentSample(time_s=1.0, bandwidth_bps={("x", "y"): 1e6})
            )

    def test_unknown_task_rejected(self, controller):
        with pytest.raises(ConfigError):
            controller.observe(
                EnvironmentSample(time_s=1.0, arrival_rates={"ghost": 1.0})
            )

    def test_events_logged(self, controller, small_cluster):
        controller.observe(
            EnvironmentSample(time_s=2.0, bandwidth_bps=all_links(small_cluster, mbps(41)))
        )
        controller.observe(
            EnvironmentSample(time_s=4.0, bandwidth_bps=all_links(small_cluster, mbps(1)))
        )
        assert [e.replanned for e in controller.events] == [True, False, True]

    def test_current_tasks_reflect_rates(self, controller, small_tasks, small_cluster):
        controller.observe(
            EnvironmentSample(time_s=5.0, arrival_rates={small_tasks[0].name: 9.0})
        )
        tasks = controller.current_tasks()
        assert tasks[0].arrival_rate == 9.0

    def test_empty_tasks_rejected(self, small_cluster):
        with pytest.raises(ConfigError):
            OnlineController(small_cluster, [])


#: deterministic calibration keeps these fast; window=6 has enough power
DRIFT = DriftConfig(window=6, calibration="zscore", threshold=4.0)


class TestDriftWiring:
    def test_service_time_validation(self, controller):
        with pytest.raises(ConfigError, match="non-positive service time"):
            EnvironmentSample(time_s=1.0, service_times_s={"t0": 0.0})
        with pytest.raises(ConfigError, match="unknown task"):
            controller.observe(
                EnvironmentSample(time_s=1.0, service_times_s={"ghost": 0.1})
            )

    def test_drift_off_by_default(self, controller, small_cluster):
        assert controller.drift_monitor is None
        controller.observe(
            EnvironmentSample(time_s=1.0, service_times_s={"t0": 0.05})
        )
        assert controller.drifted_shards == ()

    def test_shard_plan_must_home_controller_tasks(
        self, small_cluster, small_tasks, small_candidates
    ):
        with pytest.raises(ConfigError, match="different task set"):
            OnlineController(
                small_cluster, small_tasks, candidates=small_candidates,
                drift=DRIFT,
                shard_plan=ShardPlan(server_shards=((0,), (1,)), task_shard=(0,)),
            )

    def test_flags_only_perturbed_shard(
        self, small_cluster, small_tasks, small_candidates
    ):
        # t0 homed on shard 0, t1 on shard 1; only t1's service time jumps.
        # Service times bypass the re-plan trigger, so no solves fire while
        # the statistical monitor accumulates its windows.
        registry = MetricsRegistry()
        c = OnlineController(
            small_cluster, small_tasks, candidates=small_candidates,
            drift=DRIFT,
            shard_plan=ShardPlan(server_shards=((0,), (1,)), task_shard=(0, 1)),
            registry=registry,
        )
        stable = [0.020, 0.0202, 0.0198, 0.0201, 0.0199, 0.020]
        for i, v in enumerate(stable * 2):
            c.observe(EnvironmentSample(
                time_s=float(i), service_times_s={"t0": v, "t1": v},
            ))
        assert c.drifted_shards == ()
        for i, v in enumerate([0.050, 0.0498, 0.0502, 0.0501, 0.0499, 0.050]):
            c.observe(EnvironmentSample(
                time_s=12.0 + i, service_times_s={"t0": 0.020, "t1": v},
            ))
            if c.drifted_shards:
                break
        assert c.drifted_shards == (1,)
        assert registry.gauge("shard.0.drifted").value == 0.0
        assert registry.gauge("shard.1.drifted").value == 1.0
        # after a targeted re-solve the operator resets the shard's streams
        c.drift_monitor.reset_shard(1)
        assert c.drifted_shards == ()

    def test_without_shard_plan_everything_is_shard_zero(
        self, small_cluster, small_tasks, small_candidates
    ):
        registry = MetricsRegistry()
        c = OnlineController(
            small_cluster, small_tasks, candidates=small_candidates,
            drift=DRIFT, registry=registry,
        )
        for i in range(12):
            c.observe(EnvironmentSample(
                time_s=float(i), service_times_s={"t0": 0.02},
            ))
        for i in range(6):
            c.observe(EnvironmentSample(
                time_s=12.0 + i, service_times_s={"t0": 0.08},
            ))
            if c.drifted_shards:
                break
        assert c.drifted_shards == (0,)
        assert registry.gauge("shard.0.drifted").value == 1.0


class TestIncrementalReplan:
    """Drift-flagged strict-subset re-plans route through resolve_dirty."""

    def _drifted_controller(self, small_cluster, small_tasks, small_candidates):
        from repro.core.joint import JointSolverConfig

        c = OnlineController(
            small_cluster, small_tasks, candidates=small_candidates,
            solver_config=JointSolverConfig(shards=2),
            config=ControllerConfig(replan_threshold=0.3, min_replan_interval_s=1.0),
            drift=DRIFT,
            shard_plan=ShardPlan(server_shards=((0,), (1,)), task_shard=(0, 1)),
        )
        stable = [0.020, 0.0202, 0.0198, 0.0201, 0.0199, 0.020]
        for i, v in enumerate(stable * 2):
            c.observe(EnvironmentSample(
                time_s=float(i), service_times_s={"t0": v, "t1": v},
            ))
        for i, v in enumerate([0.050, 0.0498, 0.0502, 0.0501, 0.0499, 0.050]):
            c.observe(EnvironmentSample(
                time_s=12.0 + i, service_times_s={"t0": 0.020, "t1": v},
            ))
            if c.drifted_shards:
                break
        assert c.drifted_shards == (1,)
        return c

    def test_subset_drift_resolves_incrementally(
        self, small_cluster, small_tasks, small_candidates
    ):
        c = self._drifted_controller(small_cluster, small_tasks, small_candidates)
        fired = c.observe(
            EnvironmentSample(time_s=40.0, arrival_rates={"t1": 8.0})
        )
        assert fired
        event = c.events[-1]
        assert event.replanned
        assert event.reason.startswith("incremental re-solve of shards [1]")
        # the re-solved shard's streams are reset for fresh calibration
        assert c.drifted_shards == ()
        assert set(c.plan.latencies) == {t.name for t in small_tasks}

    def test_global_drift_escalates_to_full_solve(
        self, small_cluster, small_tasks, small_candidates
    ):
        c = self._drifted_controller(small_cluster, small_tasks, small_candidates)
        # drift the second shard too: every shard dirty -> full solve
        for i, v in enumerate([0.060, 0.0598, 0.0602, 0.0601, 0.0599, 0.060]):
            c.observe(EnvironmentSample(
                time_s=25.0 + i, service_times_s={"t0": v, "t1": 0.050},
            ))
            if len(c.drifted_shards) == 2:
                break
        assert c.drifted_shards == (0, 1)
        fired = c.observe(
            EnvironmentSample(time_s=40.0, arrival_rates={"t0": 9.0})
        )
        assert fired
        assert not c.events[-1].reason.startswith("incremental")

    def test_centralized_solver_never_incremental(
        self, small_cluster, small_tasks, small_candidates
    ):
        # shards=1 (default solver): the drift monitor may flag, but there
        # is no prior sharded result to stitch from
        c = OnlineController(
            small_cluster, small_tasks, candidates=small_candidates,
            config=ControllerConfig(replan_threshold=0.3, min_replan_interval_s=1.0),
            drift=DRIFT,
            shard_plan=ShardPlan(server_shards=((0,), (1,)), task_shard=(0, 1)),
        )
        for i in range(12):
            c.observe(EnvironmentSample(
                time_s=float(i), service_times_s={"t0": 0.02, "t1": 0.02},
            ))
        for i in range(6):
            c.observe(EnvironmentSample(
                time_s=12.0 + i, service_times_s={"t1": 0.05},
            ))
            if c.drifted_shards:
                break
        fired = c.observe(
            EnvironmentSample(time_s=40.0, arrival_rates={"t1": 8.0})
        )
        assert fired
        assert not c.events[-1].reason.startswith("incremental")
