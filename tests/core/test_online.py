"""Online re-optimization controller."""

import numpy as np
import pytest

from repro.core.online import (
    ControllerConfig,
    EnvironmentSample,
    OnlineController,
)
from repro.errors import ConfigError
from repro.units import mbps


@pytest.fixture()
def controller(small_cluster, small_tasks, small_candidates):
    return OnlineController(
        small_cluster,
        small_tasks,
        candidates=small_candidates,
        config=ControllerConfig(replan_threshold=0.3, min_replan_interval_s=1.0),
    )


def all_links(cluster, bw):
    return {k: bw for k in cluster.topology.links}


class TestConfigValidation:
    def test_negative_threshold(self):
        with pytest.raises(ConfigError):
            ControllerConfig(replan_threshold=-0.1)

    def test_negative_interval(self):
        with pytest.raises(ConfigError):
            ControllerConfig(min_replan_interval_s=-1.0)

    def test_sample_validation(self):
        with pytest.raises(ConfigError):
            EnvironmentSample(time_s=-1.0)
        with pytest.raises(ConfigError):
            EnvironmentSample(time_s=0.0, arrival_rates={"t": 0.0})


class TestController:
    def test_initial_plan_solved(self, controller, small_tasks):
        assert set(controller.plan.latencies) == {t.name for t in small_tasks}
        assert np.isfinite(controller.plan.objective_value)
        assert controller.replan_count == 0

    def test_small_drift_no_replan(self, controller, small_cluster):
        fired = controller.observe(
            EnvironmentSample(
                time_s=5.0,
                bandwidth_bps=all_links(small_cluster, mbps(40) * 1.1),
            )
        )
        assert not fired
        assert controller.replan_count == 0

    def test_large_drift_replans(self, controller, small_cluster):
        fired = controller.observe(
            EnvironmentSample(
                time_s=5.0, bandwidth_bps=all_links(small_cluster, mbps(2))
            )
        )
        assert fired
        assert controller.replan_count == 1

    def test_hysteresis_blocks_flapping(self, small_cluster, small_tasks, small_candidates):
        c = OnlineController(
            small_cluster,
            small_tasks,
            candidates=small_candidates,
            config=ControllerConfig(replan_threshold=0.1, min_replan_interval_s=100.0),
        )
        assert not c.observe(
            EnvironmentSample(time_s=1.0, bandwidth_bps=all_links(small_cluster, mbps(5)))
        )
        assert "hysteresis" in c.events[-1].reason

    def test_arrival_drift_replans(self, controller, small_tasks):
        fired = controller.observe(
            EnvironmentSample(
                time_s=5.0,
                arrival_rates={small_tasks[0].name: small_tasks[0].arrival_rate * 3},
            )
        )
        assert fired

    def test_replan_adapts_to_fade(self, controller, small_cluster):
        before = controller.plan
        controller.observe(
            EnvironmentSample(
                time_s=5.0, bandwidth_bps=all_links(small_cluster, mbps(0.5))
            )
        )
        after = controller.plan
        # the faded plan ships (weakly) fewer expected bytes per request
        wire_before = sum(f.wire_bytes for f in before.features.values())
        wire_after = sum(f.wire_bytes for f in after.features.values())
        assert wire_after <= wire_before + 1e-9

    def test_unknown_link_rejected(self, controller):
        with pytest.raises(ConfigError):
            controller.observe(
                EnvironmentSample(time_s=1.0, bandwidth_bps={("x", "y"): 1e6})
            )

    def test_unknown_task_rejected(self, controller):
        with pytest.raises(ConfigError):
            controller.observe(
                EnvironmentSample(time_s=1.0, arrival_rates={"ghost": 1.0})
            )

    def test_events_logged(self, controller, small_cluster):
        controller.observe(
            EnvironmentSample(time_s=2.0, bandwidth_bps=all_links(small_cluster, mbps(41)))
        )
        controller.observe(
            EnvironmentSample(time_s=4.0, bandwidth_bps=all_links(small_cluster, mbps(1)))
        )
        assert [e.replanned for e in controller.events] == [True, False, True]

    def test_current_tasks_reflect_rates(self, controller, small_tasks, small_cluster):
        controller.observe(
            EnvironmentSample(time_s=5.0, arrival_rates={small_tasks[0].name: 9.0})
        )
        tasks = controller.current_tasks()
        assert tasks[0].arrival_rate == 9.0

    def test_empty_tasks_rejected(self, small_cluster):
        with pytest.raises(ConfigError):
            OnlineController(small_cluster, [])
