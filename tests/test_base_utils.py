"""Base utilities: units, RNG streams, error hierarchy."""

import numpy as np
import pytest

from repro import errors, units
from repro.rng import DEFAULT_SEED, as_generator, derive, spawn


class TestUnits:
    def test_time(self):
        assert units.ms(250) == pytest.approx(0.25)
        assert units.us(1500) == pytest.approx(1.5e-3)
        assert units.to_ms(0.25) == pytest.approx(250)

    def test_compute(self):
        assert units.gflops(2) == 2e9
        assert units.mflops(2) == 2e6
        assert units.gflops_per_s(3) == 3e9
        assert units.tflops_per_s(1) == 1e12

    def test_sizes(self):
        assert units.kib(1) == 1024
        assert units.mib(1) == 1024**2
        assert units.to_mib(units.mib(3.5)) == pytest.approx(3.5)

    def test_bandwidth_bits_vs_bytes(self):
        assert units.mbps(8) == pytest.approx(1e6)  # 8 Mbit/s = 1 MB/s
        assert units.gbps(1) == pytest.approx(125e6)
        assert units.to_mbps(units.mbps(40)) == pytest.approx(40)

    def test_float32_bytes(self):
        assert units.FLOAT32_BYTES == 4


class TestRng:
    def test_none_maps_to_default_seed(self):
        a = as_generator(None)
        b = as_generator(DEFAULT_SEED)
        assert a.integers(2**31) == b.integers(2**31)

    def test_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert as_generator(g) is g

    def test_spawn_independent_streams(self):
        parent = as_generator(5)
        children = spawn(parent, 3)
        draws = [c.integers(2**31) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_negative_raises(self):
        with pytest.raises(ValueError):
            spawn(as_generator(1), -1)

    def test_derive_stable_across_calls(self):
        a = derive(7, "arrivals", "t0")
        b = derive(7, "arrivals", "t0")
        assert a.integers(2**31) == b.integers(2**31)

    def test_derive_distinguishes_tokens(self):
        a = derive(7, "arrivals", "t0")
        b = derive(7, "arrivals", "t1")
        c = derive(7, "difficulty", "t0")
        draws = {g.integers(2**31) for g in (a, b, c)}
        assert len(draws) == 3

    def test_derive_order_independent(self):
        """Unlike spawn, derive does not depend on call order."""
        first = derive(9, "x").integers(2**31)
        derive(9, "noise")  # interleave an unrelated stream
        second = derive(9, "x").integers(2**31)
        assert first == second


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ModelError,
            errors.ShapeError,
            errors.ProfileError,
            errors.PlanError,
            errors.InfeasibleError,
            errors.SimulationError,
            errors.ConvergenceError,
            errors.ConfigError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_shape_error_is_model_error(self):
        assert issubclass(errors.ShapeError, errors.ModelError)

    def test_one_except_catches_library_failures(self):
        try:
            raise errors.InfeasibleError("nothing fits")
        except errors.ReproError as e:
            assert "nothing fits" in str(e)
