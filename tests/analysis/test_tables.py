"""ASCII tables."""

import pytest

from repro.analysis.tables import format_table
from repro.errors import ConfigError


class TestFormatTable:
    def test_renders_headers_and_rows(self):
        s = format_table(["a", "b"], [(1, 2.5), ("x", 3.0)])
        assert "a" in s and "x" in s and "2.500" in s

    def test_title(self):
        s = format_table(["a"], [(1,)], title="hello")
        assert s.splitlines()[0] == "hello"

    def test_width_mismatch_raises(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [(1,)])

    def test_custom_float_format(self):
        s = format_table(["v"], [(1.23456,)], float_fmt="{:.1f}")
        assert "1.2" in s and "1.235" not in s

    def test_empty_rows_ok(self):
        s = format_table(["a"], [])
        assert "a" in s

    def test_columns_aligned(self):
        s = format_table(["col"], [(1,), (100,)])
        lines = s.splitlines()
        assert len(lines[-1]) == len(lines[-2])
