"""Speedups and crossovers."""

import numpy as np
import pytest

from repro.analysis.compare import crossover_point, speedup, speedups_over
from repro.errors import ConfigError


class TestSpeedup:
    def test_basic(self):
        assert speedup(2.0, 1.0) == pytest.approx(2.0)

    def test_invalid(self):
        with pytest.raises(ConfigError):
            speedup(1.0, 0.0)

    def test_speedups_over(self):
        s = speedups_over({"joint": 1.0, "a": 2.0, "b": 0.5})
        assert s == {"a": 2.0, "b": 0.5}

    def test_missing_reference_raises(self):
        with pytest.raises(ConfigError):
            speedups_over({"a": 1.0})


class TestCrossover:
    def test_interpolated_crossing(self):
        x = [0.0, 1.0, 2.0]
        a = [0.0, 1.0, 2.0]
        b = [1.0, 1.0, 1.0]
        assert crossover_point(x, a, b) == pytest.approx(1.0)

    def test_no_crossing(self):
        x = [0.0, 1.0]
        assert crossover_point(x, [0.0, 0.5], [1.0, 2.0]) is None

    def test_nonfinite_points_skipped(self):
        x = [0.0, 1.0, 2.0, 3.0]
        a = [np.inf, 2.0, 1.0, 0.0]
        b = [np.inf, 1.0, 1.0, 1.0]
        c = crossover_point(x, a, b)
        assert c is not None and 1.0 < c < 3.0

    def test_all_nonfinite_returns_none(self):
        x = [0.0, 1.0]
        assert crossover_point(x, [np.inf, np.inf], [1.0, 1.0]) is None

    def test_unsorted_x_raises(self):
        with pytest.raises(ConfigError):
            crossover_point([1.0, 0.0], [0.0, 1.0], [1.0, 0.0])

    def test_length_mismatch_raises(self):
        with pytest.raises(ConfigError):
            crossover_point([0.0, 1.0], [0.0], [1.0, 0.0])
