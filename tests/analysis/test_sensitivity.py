"""Plan sensitivity analysis."""

import numpy as np
import pytest

from repro.analysis.sensitivity import (
    TaskSensitivity,
    plan_sensitivity,
    sensitivity_table,
)
from repro.core.joint import JointOptimizer
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


class TestPlanSensitivity:
    def test_one_entry_per_task(self, small_cluster, small_tasks, solved):
        sens = plan_sensitivity(small_tasks, solved, small_cluster)
        assert [s.task_name for s in sens] == [t.name for t in small_tasks]

    def test_elasticities_nonpositive(self, small_cluster, small_tasks, solved):
        # more bandwidth / faster servers can only help
        for s in plan_sensitivity(small_tasks, solved, small_cluster):
            assert s.bandwidth_elasticity <= 1e-9
            assert s.server_elasticity <= 1e-9

    def test_elasticity_magnitudes_bounded(self, small_cluster, small_tasks, solved):
        # latency has additive fixed parts, so |elasticity| <= ~1 off
        # saturation (queueing can amplify slightly; allow headroom)
        for s in plan_sensitivity(small_tasks, solved, small_cluster):
            assert abs(s.bandwidth_elasticity) < 3.0
            assert abs(s.server_elasticity) < 3.0

    def test_offloaded_tasks_are_network_or_server_bound(
        self, small_cluster, small_tasks, solved
    ):
        sens = plan_sensitivity(small_tasks, solved, small_cluster)
        for t, s in zip(small_tasks, sens):
            if solved.assignment[t.name] is not None and solved.features[
                t.name
            ].p_offload > 0.5:
                assert s.dominant_resource in ("bandwidth", "server")

    def test_local_only_plan_insensitive(self, small_cluster, small_tasks, small_candidates):
        from repro.baselines import BranchyLocal

        local = BranchyLocal().solve(
            small_tasks, small_cluster, candidates=small_candidates
        )
        sens = plan_sensitivity(
            small_tasks, local, small_cluster, include_queueing=False
        )
        for s in sens:
            assert s.bandwidth_elasticity == pytest.approx(0.0, abs=1e-9)
            assert s.server_elasticity == pytest.approx(0.0, abs=1e-9)
            assert s.dominant_resource == "device"

    def test_invalid_perturbation(self, small_cluster, small_tasks, solved):
        with pytest.raises(ConfigError):
            plan_sensitivity(small_tasks, solved, small_cluster, perturbation=0.9)

    def test_unknown_task_rejected(self, small_cluster, small_tasks, solved, me_resnet18):
        from repro.core.plan import TaskSpec

        ghost = TaskSpec("ghost", me_resnet18, "dev0")
        with pytest.raises(ConfigError):
            plan_sensitivity([ghost], solved, small_cluster)

    def test_table_renders(self, small_cluster, small_tasks, solved):
        s = sensitivity_table(plan_sensitivity(small_tasks, solved, small_cluster))
        assert "bound_by" in s and "t0" in s


class TestDominantResource:
    def test_thresholding(self):
        dev = TaskSensitivity("t", 0.1, -0.01, -0.02)
        assert dev.dominant_resource == "device"
        bw = TaskSensitivity("t", 0.1, -0.8, -0.1)
        assert bw.dominant_resource == "bandwidth"
        srv = TaskSensitivity("t", 0.1, -0.1, -0.8)
        assert srv.dominant_resource == "server"
