"""Markdown report rendering."""

import pytest

from repro.analysis.report import (
    render_experiment_section,
    render_markdown_report,
    render_scorecard,
)
from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult


def make_result(exp_id="E1", title="demo"):
    return ExperimentResult(
        exp_id=exp_id,
        title=title,
        headers=["a", "b"],
        rows=[(1, 2.0)],
        notes=["a note"],
    )


class TestSections:
    def test_section_contains_table_and_commentary(self):
        s = render_experiment_section(make_result(), commentary="**expect** X")
        assert "## E1 — demo" in s
        assert "**expect** X" in s
        assert "a note" in s

    def test_section_without_commentary(self):
        s = render_experiment_section(make_result())
        assert "## E1" in s


class TestReport:
    def test_orders_e_before_a(self):
        report = render_markdown_report(
            [make_result("A1"), make_result("E2"), make_result("E10")],
            title="T",
        )
        i_e2 = report.index("## E2")
        i_e10 = report.index("## E10")
        i_a1 = report.index("## A1")
        assert i_e2 < i_e10 < i_a1

    def test_preamble_and_commentary(self):
        report = render_markdown_report(
            [make_result("E1")],
            preamble="hello world",
            commentary={"E1": "shape holds"},
        )
        assert "hello world" in report
        assert "shape holds" in report

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_markdown_report([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigError):
            render_markdown_report([make_result("E1"), make_result("E1")])


class TestScorecard:
    def test_renders_markdown_table(self):
        s = render_scorecard([("E1", "fig", "shape", "✅")])
        lines = s.splitlines()
        assert lines[0].startswith("| ID |")
        assert "E1" in lines[2]

    def test_width_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            render_scorecard([("E1", "fig")])
