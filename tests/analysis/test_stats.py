"""Statistics helpers."""

import numpy as np
import pytest

from repro.analysis.stats import bootstrap_ci, mean_ci, summarize
from repro.errors import ConfigError


class TestSummarize:
    def test_basic(self):
        s = summarize(np.array([1.0, 2.0, 3.0]))
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0

    def test_percentiles_ordered(self):
        s = summarize(np.random.default_rng(0).exponential(1.0, 500))
        assert s.p50 <= s.p95 <= s.p99

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            summarize(np.array([]))

    def test_single_sample_std_zero(self):
        assert summarize(np.array([5.0])).std == 0.0


class TestMeanCI:
    def test_contains_mean(self):
        x = np.random.default_rng(1).normal(10.0, 1.0, 100)
        m, lo, hi = mean_ci(x)
        assert lo <= m <= hi

    def test_wider_at_higher_confidence(self):
        x = np.random.default_rng(2).normal(0.0, 1.0, 50)
        _, lo95, hi95 = mean_ci(x, 0.95)
        _, lo99, hi99 = mean_ci(x, 0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_single_sample_degenerate(self):
        m, lo, hi = mean_ci(np.array([3.0]))
        assert m == lo == hi == 3.0

    def test_invalid_confidence(self):
        with pytest.raises(ConfigError):
            mean_ci(np.array([1.0, 2.0]), confidence=1.5)

    def test_coverage_empirical(self):
        """~95% of 95% CIs should contain the true mean."""
        rng = np.random.default_rng(3)
        hits = 0
        n_trials = 200
        for _ in range(n_trials):
            x = rng.normal(5.0, 2.0, 30)
            _, lo, hi = mean_ci(x, 0.95)
            hits += lo <= 5.0 <= hi
        assert hits / n_trials > 0.88


class TestBootstrap:
    def test_contains_point(self):
        x = np.random.default_rng(4).exponential(1.0, 80)
        p, lo, hi = bootstrap_ci(x, np.median, seed=0)
        assert lo <= p <= hi

    def test_deterministic_given_seed(self):
        x = np.random.default_rng(5).normal(0, 1, 40)
        a = bootstrap_ci(x, seed=1)
        b = bootstrap_ci(x, seed=1)
        assert a == b

    def test_empty_raises(self):
        with pytest.raises(ConfigError):
            bootstrap_ci(np.array([]))


class TestJainIndex:
    def test_equal_values_are_perfectly_fair(self):
        from repro.analysis.stats import jain_index

        assert jain_index(np.array([3.0, 3.0, 3.0])) == pytest.approx(1.0)

    def test_single_dominator_is_one_over_n(self):
        from repro.analysis.stats import jain_index

        assert jain_index(np.array([1.0, 0.0, 0.0, 0.0])) == pytest.approx(0.25)

    def test_range(self):
        from repro.analysis.stats import jain_index

        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.uniform(0, 10, size=rng.integers(2, 10))
            j = jain_index(x)
            assert 1.0 / len(x) - 1e-12 <= j <= 1.0 + 1e-12

    def test_negative_rejected(self):
        from repro.analysis.stats import jain_index
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            jain_index(np.array([-1.0, 1.0]))
