"""CLI commands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fly"])

    def test_experiment_id_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "E99"])


class TestCommands:
    def test_list_models(self, capsys):
        assert main(["list-models"]) == 0
        out = capsys.readouterr().out
        assert "vgg16" in out and "GFLOPs" in out

    def test_profile(self, capsys):
        assert main(["profile", "alexnet", "raspberry_pi4", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "alexnet" in out and "ms total" in out

    def test_solve(self, capsys):
        assert main(["solve", "--tasks", "2", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "objective" in out and "t0" in out

    def test_solve_writes_plan(self, capsys, tmp_path):
        path = str(tmp_path / "plan.json")
        assert main(["solve", "--tasks", "2", "--output", path]) == 0
        from repro.io import load_joint_plan

        plan = load_joint_plan(path)
        assert "t0" in plan.latencies

    def test_solve_sharded(self, capsys):
        assert main(
            ["solve", "--tasks", "12", "--servers", "4", "--shards", "2",
             "--shard-by", "interleave", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "shard solves (interleave)" in out
        assert "migrations/round" in out
        assert "objective" in out

    def test_solve_rejects_bad_shards(self, capsys):
        assert main(["solve", "--tasks", "4", "--shards", "0"]) == 1
        assert "shards" in capsys.readouterr().err

    def test_simulate(self, capsys):
        assert main(
            ["simulate", "--tasks", "2", "--horizon", "5", "--scenario", "mobile_ar"]
        ) == 0
        out = capsys.readouterr().out
        assert "simulated" in out

    def test_experiment(self, capsys):
        assert main(["experiment", "E7"]) == 0
        out = capsys.readouterr().out
        assert "convergence" in out

    def test_deadline_objective_flag(self, capsys):
        assert main(["solve", "--tasks", "2", "--objective", "deadline_miss"]) == 0

    def test_trace_writes_outputs_and_breakdown(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        assert main(
            ["trace", "smart_city", "--tasks", "2", "--servers", "2",
             "--out", str(out_dir)]
        ) == 0
        out = capsys.readouterr().out
        assert "solve phase breakdown" in out
        assert "solve.candidates" in out
        import json

        payload = json.loads((out_dir / "trace.json").read_text())
        assert payload["traceEvents"]
        metric_names = {
            json.loads(ln)["name"]
            for ln in (out_dir / "metrics.jsonl").read_text().splitlines()
        }
        assert "solver.allocate_calls" in metric_names
        # the CLI must leave the process-wide tracer disabled afterwards
        from repro.telemetry.trace import get_tracer

        assert not get_tracer().enabled

    def test_trace_simulate_includes_timeline(self, capsys, tmp_path):
        out_dir = tmp_path / "traces"
        assert main(
            ["trace", "mobile_ar", "--tasks", "2", "--servers", "2",
             "--simulate", "--horizon", "3", "--out", str(out_dir)]
        ) == 0
        import json

        payload = json.loads((out_dir / "trace.json").read_text())
        names = {e.get("name") for e in payload["traceEvents"]}
        assert "simulator" in {
            e["args"].get("name")
            for e in payload["traceEvents"]
            if e["ph"] == "M" and "args" in e
        } or any(n in names for n in ("enqueue", "exec_start", "complete"))

    def test_trace_rejects_unknown_target(self, capsys):
        assert main(["trace", "not_a_scenario"]) == 1
        assert "unknown trace target" in capsys.readouterr().err

    def test_chaos_replays_with_and_without_policy(self, capsys):
        assert main(
            ["chaos", "--tasks", "2", "--servers", "2", "--horizon", "6",
             "--crash-rate", "6", "--seed", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "sampled fault schedule" in out
        assert "chaos replay" in out
        assert "no-policy" in out and "failovers" in out

    def test_chaos_rejects_bad_policy_knobs(self, capsys):
        assert main(
            ["chaos", "--tasks", "2", "--horizon", "6", "--timeout", "0"]
        ) == 1


class TestRiskCommands:
    def test_profile_repeats(self, capsys):
        assert main(
            ["profile", "alexnet", "raspberry_pi4", "--noise", "0.05",
             "--repeats", "4", "--top", "3"]
        ) == 0
        assert "ms total" in capsys.readouterr().out

    def test_simulate_service_noise_and_epsilon(self, capsys):
        assert main(
            ["simulate", "--tasks", "2", "--horizon", "6",
             "--service-noise", "0.2", "--epsilon", "0.1", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "tail-violation verdict" in out
        assert "overall realized violation" in out

    def test_simulate_epsilon_validated(self, capsys):
        assert main(
            ["simulate", "--tasks", "2", "--horizon", "6", "--epsilon", "2.0"]
        ) == 1
        assert "epsilon" in capsys.readouterr().err

    def test_risk_command(self, capsys):
        assert main(
            ["risk", "--tasks", "3", "--horizon", "6",
             "--deadline-scale", "3.0", "--seed", "0"]
        ) == 0
        out = capsys.readouterr().out
        assert "certification and realized misses" in out
        assert "kappa=" in out
        assert "realized violation over certified tasks" in out

    def test_risk_gaussian_buffer(self, capsys):
        assert main(
            ["risk", "--tasks", "2", "--horizon", "6", "--buffer", "gaussian",
             "--epsilon", "0.1", "--seed", "0"]
        ) == 0
        assert "buffer=gaussian" in capsys.readouterr().out

    def test_risk_rejects_bad_buffer(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["risk", "--buffer", "chebyshev"])
