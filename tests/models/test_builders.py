"""GraphBuilder and block helpers."""

import pytest

from repro.errors import ModelError
from repro.models.builders import (
    GraphBuilder,
    conv_bn_relu,
    inception_module,
    inverted_residual,
    residual_block,
    separable_block,
)
from repro.models.layers import Activation, Add, Dense, GlobalAvgPool


class TestGraphBuilder:
    def test_sequential_add(self):
        b = GraphBuilder("m", (3, 8, 8))
        b.add(Activation("a1"))
        b.add(Activation("a2"))
        g = b.build()
        assert g.topological_order == ["input", "a1", "a2"]

    def test_add_after_explicit(self):
        b = GraphBuilder("m", (3, 8, 8))
        b.add(Activation("a1"))
        b.add(Activation("a2"), after="input")
        b.merge(Add("sum"), ["a1", "a2"])
        g = b.build()
        assert set(g.predecessors("sum")) == {"a1", "a2"}

    def test_duplicate_name_raises(self):
        b = GraphBuilder("m", (3, 8, 8))
        b.add(Activation("a"))
        with pytest.raises(ModelError):
            b.add(Activation("a"))

    def test_unknown_predecessor_raises(self):
        b = GraphBuilder("m", (3, 8, 8))
        with pytest.raises(ModelError):
            b.add(Activation("a"), after="ghost")

    def test_merge_unknown_input_raises(self):
        b = GraphBuilder("m", (3, 8, 8))
        b.add(Activation("a"))
        with pytest.raises(ModelError):
            b.merge(Add("s"), ["a", "ghost"])

    def test_tail_tracks_last(self):
        b = GraphBuilder("m", (3, 8, 8))
        assert b.tail == "input"
        b.add(Activation("a"))
        assert b.tail == "a"


class TestBlocks:
    def test_conv_bn_relu_shapes(self):
        b = GraphBuilder("m", (3, 16, 16))
        out = conv_bn_relu(b, "blk", 8, 3, padding=1)
        g = _finish(b)
        assert g.output_shape_of(out) == (8, 16, 16)

    def test_residual_block_valid(self):
        b = GraphBuilder("m", (3, 16, 16))
        conv_bn_relu(b, "stem", 8, 3, padding=1)
        out = residual_block(b, "rb_1", 8, stride=1)
        g = _finish(b)
        assert g.output_shape_of(out) == (8, 16, 16)

    def test_residual_block_downsamples(self):
        b = GraphBuilder("m", (3, 16, 16))
        conv_bn_relu(b, "stem", 8, 3, padding=1)
        out = residual_block(b, "rb_1", 16, stride=2)
        g = _finish(b)
        assert g.output_shape_of(out) == (16, 8, 8)

    def test_bottleneck_block(self):
        b = GraphBuilder("m", (3, 16, 16))
        conv_bn_relu(b, "stem", 64, 3, padding=1)
        out = residual_block(b, "rb_0", 64, stride=1, bottleneck=True)
        g = _finish(b)
        assert g.output_shape_of(out) == (64, 16, 16)

    def test_separable_block(self):
        b = GraphBuilder("m", (3, 16, 16))
        conv_bn_relu(b, "stem", 8, 3, padding=1)
        out = separable_block(b, "sep", 16, stride=2)
        g = _finish(b)
        assert g.output_shape_of(out) == (16, 8, 8)

    def test_inverted_residual_skip_when_same_shape(self):
        b = GraphBuilder("m", (3, 16, 16))
        conv_bn_relu(b, "stem", 16, 3, padding=1)
        out = inverted_residual(b, "ir", 16, 16, expand=6, stride=1)
        assert out.endswith("_add")
        _finish(b)

    def test_inverted_residual_no_skip_on_stride(self):
        b = GraphBuilder("m", (3, 16, 16))
        conv_bn_relu(b, "stem", 16, 3, padding=1)
        out = inverted_residual(b, "ir", 16, 24, expand=6, stride=2)
        assert not out.endswith("_add")
        _finish(b)

    def test_inception_module_concat_channels(self):
        b = GraphBuilder("m", (3, 16, 16))
        conv_bn_relu(b, "stem", 32, 3, padding=1)
        out = inception_module(b, "inc", 8, 4, 8, 2, 4, 4)
        g = _finish(b)
        assert g.output_shape_of(out) == (8 + 8 + 4 + 4, 16, 16)


def _finish(b: GraphBuilder):
    """Cap the builder with GAP+Dense so the graph has a single sink."""
    b.add(GlobalAvgPool("_gap"))
    b.add(Dense("_fc", out_features=2))
    return b.build()
