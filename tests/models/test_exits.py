"""Exit-policy semantics: rates, thresholds, conditional accuracy."""

import numpy as np
import pytest

from repro.errors import ConfigError, PlanError
from repro.models.accuracy import AccuracyModel
from repro.models.exits import (
    DifficultyDistribution,
    ExitPolicy,
    difficulty_cutoffs,
    exit_probabilities,
    expected_accuracy,
    expected_exit_depth,
)

ACC = AccuracyModel()
DIFF = DifficultyDistribution()
COMP = np.array([0.2, 0.5, 0.8])


class TestDifficultyDistribution:
    def test_grid_weights_normalized(self):
        _, w = DIFF.grid()
        assert w.sum() == pytest.approx(1.0)

    def test_grid_nodes_in_unit_interval(self):
        g, _ = DIFF.grid()
        assert g.min() > 0 and g.max() < 1

    def test_invalid_params(self):
        with pytest.raises(ConfigError):
            DifficultyDistribution(alpha=0.0)

    def test_sample_range(self):
        rng = np.random.default_rng(0)
        s = DIFF.sample(rng, 1000)
        assert s.min() >= 0 and s.max() <= 1

    def test_easy_vs_hard_means(self):
        easy = DifficultyDistribution(alpha=1.5, beta=6.0)
        hard = DifficultyDistribution(alpha=4.0, beta=2.0)
        ge, we = easy.grid()
        gh, wh = hard.grid()
        assert ge @ we < gh @ wh

    def test_cdf_monotone(self):
        x = np.linspace(0, 1, 11)
        c = DIFF.cdf(x)
        assert np.all(np.diff(c) >= 0)


class TestExitPolicy:
    def test_valid(self):
        p = ExitPolicy(thresholds=(0.5, 0.8, 0.0))
        assert p.num_exits == 3

    def test_last_must_be_zero(self):
        with pytest.raises(PlanError):
            ExitPolicy(thresholds=(0.5, 0.8))

    def test_threshold_range(self):
        with pytest.raises(PlanError):
            ExitPolicy(thresholds=(1.0, 0.0))
        with pytest.raises(PlanError):
            ExitPolicy(thresholds=(-0.1, 0.0))

    def test_empty_raises(self):
        with pytest.raises(PlanError):
            ExitPolicy(thresholds=())


class TestCutoffs:
    def test_zero_threshold_is_infinite_cutoff(self):
        cut = difficulty_cutoffs(COMP, np.array([0.5, 0.5, 0.0]))
        assert np.isinf(cut[-1])

    def test_higher_threshold_lower_cutoff(self):
        lo = difficulty_cutoffs(np.array([0.5]), np.array([0.6]))
        hi = difficulty_cutoffs(np.array([0.5]), np.array([0.9]))
        assert hi[0] < lo[0]

    def test_higher_competence_higher_cutoff(self):
        cut = difficulty_cutoffs(COMP, np.array([0.7, 0.7, 0.7]))
        assert np.all(np.diff(cut) > 0)


class TestExitProbabilities:
    def test_sums_to_one(self):
        p, _ = exit_probabilities(COMP, (0.7, 0.7, 0.0), DIFF, ACC)
        assert p.sum() == pytest.approx(1.0)

    def test_all_mass_at_final_when_thresholds_high(self):
        p, _ = exit_probabilities(COMP, (0.999999, 0.999999, 0.0), DIFF, ACC)
        assert p[-1] == pytest.approx(1.0, abs=1e-3)

    def test_lower_threshold_more_early_mass(self):
        p_lo, _ = exit_probabilities(COMP, (0.5, 0.5, 0.0), DIFF, ACC)
        p_hi, _ = exit_probabilities(COMP, (0.9, 0.9, 0.0), DIFF, ACC)
        assert p_lo[0] > p_hi[0]

    def test_conditional_accuracy_above_marginal_for_thresholded_exits(self):
        p, acc = exit_probabilities(COMP, (0.8, 0.8, 0.0), DIFF, ACC)
        grid, w = DIFF.grid()
        marginal0 = float(ACC.correctness(COMP[0:1], grid)[0] @ w)
        if p[0] > 0:
            assert acc[0] > marginal0  # easy samples only -> more correct

    def test_shape_mismatch_raises(self):
        with pytest.raises(PlanError):
            exit_probabilities(COMP, (0.5, 0.0), DIFF, ACC)

    def test_final_threshold_nonzero_raises(self):
        with pytest.raises(PlanError):
            exit_probabilities(COMP, (0.5, 0.5, 0.5), DIFF, ACC)

    def test_single_exit_policy(self):
        p, acc = exit_probabilities(COMP[-1:], (0.0,), DIFF, ACC)
        assert p[0] == pytest.approx(1.0)
        grid, w = DIFF.grid()
        assert acc[0] == pytest.approx(float(ACC.correctness(COMP[-1:], grid)[0] @ w), abs=1e-9)


class TestAggregates:
    def test_expected_accuracy(self):
        assert expected_accuracy(np.array([0.3, 0.7]), np.array([0.5, 0.9])) == pytest.approx(
            0.3 * 0.5 + 0.7 * 0.9
        )

    def test_expected_exit_depth(self):
        assert expected_exit_depth(np.array([0.5, 0.5]), np.array([0.2, 1.0])) == pytest.approx(
            0.6
        )

    def test_easy_workload_exits_earlier(self):
        easy = DifficultyDistribution(alpha=1.5, beta=6.0)
        hard = DifficultyDistribution(alpha=4.0, beta=2.0)
        pe, _ = exit_probabilities(COMP, (0.7, 0.7, 0.0), easy, ACC)
        ph, _ = exit_probabilities(COMP, (0.7, 0.7, 0.0), hard, ACC)
        depths = np.array([0.3, 0.6, 1.0])
        assert expected_exit_depth(pe, depths) < expected_exit_depth(ph, depths)
