"""Zoo architectures: totals against published ballpark numbers.

FLOPs use the 2-FLOPs-per-MAC convention, so targets are 2x published MACs.
"""

import pytest

from repro.errors import ModelError
from repro.models import zoo

#: model -> (GFLOPs low, high, MParams low, high)
EXPECTED = {
    "alexnet": (1.2, 1.7, 57, 64),
    "vgg11": (14, 16.5, 128, 137),
    "vgg16": (29, 33, 134, 142),
    "vgg19": (37, 41, 139, 148),
    "resnet18": (3.2, 4.0, 11, 13),
    "resnet34": (6.8, 7.9, 21, 23),
    "resnet50": (7.0, 8.6, 24, 27),
    "mobilenet_v1": (1.0, 1.3, 4.0, 4.5),
    "mobilenet_v2": (0.5, 0.8, 3.2, 3.8),
    "inception_v1": (2.7, 3.6, 6.5, 7.5),
    "squeezenet": (0.55, 0.85, 1.1, 1.4),
    "densenet121": (5.0, 6.3, 7.2, 8.6),
}


class TestRegistry:
    def test_available_models(self):
        assert set(EXPECTED) == set(zoo.available_models())

    def test_unknown_model_raises(self):
        with pytest.raises(ModelError):
            zoo.build("lenet9000")

    def test_build_returns_fresh_graph(self):
        a = zoo.build("alexnet")
        b = zoo.build("alexnet")
        assert a is not b


@pytest.mark.parametrize("name", sorted(EXPECTED))
class TestArchitectures:
    def test_flops_in_published_range(self, name):
        lo, hi, _, _ = EXPECTED[name]
        g = zoo.build(name)
        assert lo <= g.total_flops / 1e9 <= hi, g.total_flops / 1e9

    def test_params_in_published_range(self, name):
        _, _, lo, hi = EXPECTED[name]
        g = zoo.build(name)
        assert lo <= g.total_params / 1e6 <= hi, g.total_params / 1e6

    def test_imagenet_io(self, name):
        g = zoo.build(name)
        assert g.input_shape == (3, 224, 224)
        assert g.output_shape_of(g.sink) == (1000,)

    def test_has_interior_cut_points(self, name):
        g = zoo.build(name)
        interior = [c for c in g.cut_points if 0 < c.depth_fraction < 1]
        assert len(interior) >= 5

    def test_cut_flops_strictly_ordered(self, name):
        g = zoo.build(name)
        flops = [c.head_flops for c in g.cut_points]
        assert all(b >= a for a, b in zip(flops, flops[1:]))


class TestSpecifics:
    def test_vgg_depth_ordering(self):
        assert (
            zoo.build("vgg11").total_flops
            < zoo.build("vgg16").total_flops
            < zoo.build("vgg19").total_flops
        )

    def test_resnet_depth_ordering(self):
        assert zoo.build("resnet18").total_flops < zoo.build("resnet34").total_flops

    def test_vgg_invalid_depth(self):
        from repro.models.zoo.vgg import build_vgg

        with pytest.raises(ModelError):
            build_vgg(13)

    def test_resnet_invalid_depth(self):
        from repro.models.zoo.resnet import build_resnet

        with pytest.raises(ModelError):
            build_resnet(101)

    def test_custom_num_classes(self):
        from repro.models.zoo.alexnet import build_alexnet

        g = build_alexnet(num_classes=10)
        assert g.output_shape_of(g.sink) == (10,)

    def test_mobilenet_v2_residuals_present(self):
        g = zoo.build("mobilenet_v2")
        assert any("add" in n for n in g.topological_order)


class TestDenseNetCutEconomics:
    """DenseNet's cut points exist everywhere but are only cheap at
    transitions — the property its zoo entry exists to exercise."""

    def test_transition_boundaries_are_local_minima(self):
        g = zoo.build("densenet121")
        cuts = {c.name: c for c in g.cut_points}
        # a transition pool output is far smaller than the dense-layer
        # boundary just before it
        trans = cuts["trans1_pool"]
        pre = cuts["b1_l5_cat"]
        assert trans.boundary_bytes < pre.boundary_bytes / 3

    def test_boundaries_grow_inside_a_block(self):
        g = zoo.build("densenet121")
        sizes = [
            c.boundary_bytes
            for c in g.cut_points
            if c.name.startswith("b1_l") and c.name.endswith("_cat")
        ]
        assert sizes == sorted(sizes)
        assert len(sizes) == 6

    def test_head_fc_params(self):
        g = zoo.build("densenet121")
        # final feature width of DenseNet-121 is 1024
        assert g.params_of("fc") == 1024 * 1000 + 1000
