"""AccuracyModel: curve shape and competence calibration."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.models.accuracy import PROFILES, AccuracyModel, profile_for, sigmoid
from repro.models.exits import DifficultyDistribution


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_symmetric(self):
        x = np.array([3.0])
        assert sigmoid(x)[0] + sigmoid(-x)[0] == pytest.approx(1.0)

    def test_extreme_values_stable(self):
        out = sigmoid(np.array([-1000.0, 1000.0]))
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(1.0)


class TestAccuracyCurve:
    def test_monotone_in_depth(self):
        m = AccuracyModel()
        depths = np.linspace(0, 1, 20)
        acc = m.accuracy_at(depths)
        assert np.all(np.diff(acc) > 0)

    def test_endpoints(self):
        m = AccuracyModel(final_accuracy=0.8, base_accuracy=0.2, sharpness=3.0)
        assert m.accuracy_at(0.0) == pytest.approx(0.2)
        # saturates toward (not exactly at) final accuracy
        assert 0.75 < float(m.accuracy_at(1.0)) < 0.8

    def test_rejects_out_of_range_depth(self):
        with pytest.raises(ConfigError):
            AccuracyModel().accuracy_at(1.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(final_accuracy=0.0),
            dict(final_accuracy=1.2),
            dict(base_accuracy=0.9, final_accuracy=0.8),
            dict(sharpness=-1.0),
            dict(difficulty_sensitivity=0.0),
        ],
    )
    def test_invalid_config(self, kwargs):
        with pytest.raises(ConfigError):
            AccuracyModel(**kwargs)


class TestCalibration:
    def test_calibrated_competence_hits_target(self):
        m = AccuracyModel()
        grid, w = DifficultyDistribution().grid()
        targets = np.array([0.4, 0.6, 0.75])
        comp = m.calibrate_competence(targets, grid, w)
        achieved = m.correctness(comp, grid) @ w
        np.testing.assert_allclose(achieved, targets, atol=1e-6)

    def test_competence_monotone_in_target(self):
        m = AccuracyModel()
        grid, w = DifficultyDistribution().grid()
        comp = m.calibrate_competence(np.array([0.3, 0.5, 0.7, 0.9]), grid, w)
        assert np.all(np.diff(comp) > 0)

    def test_rejects_degenerate_targets(self):
        m = AccuracyModel()
        grid, w = DifficultyDistribution().grid()
        with pytest.raises(ConfigError):
            m.calibrate_competence(np.array([1.0]), grid, w)

    def test_correctness_decreasing_in_difficulty(self):
        m = AccuracyModel()
        d = np.linspace(0, 1, 10)
        c = m.correctness(np.array([0.5]), d)[0]
        assert np.all(np.diff(c) < 0)


class TestProfiles:
    def test_every_zoo_model_has_profile(self):
        from repro.models import zoo

        for name in zoo.available_models():
            assert name in PROFILES

    def test_profile_for_fallback(self):
        assert isinstance(profile_for("unknown_model"), AccuracyModel)

    def test_resnet50_beats_alexnet(self):
        assert PROFILES["resnet50"].final_accuracy > PROFILES["alexnet"].final_accuracy
