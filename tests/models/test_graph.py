"""Unit tests for ModelGraph: validation, inference, cut points."""

import pytest

from repro.errors import ModelError
from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Add,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Input,
    Softmax,
)
from repro.models.zoo import build


def _branchy_graph():
    """input -> conv -> (a | b) -> add -> gap -> fc (a tiny residual shape)."""
    layers = {
        "input": Input("input", shape=(3, 8, 8)),
        "conv": Conv2D("conv", out_channels=4, kernel=3, padding=1),
        "a": Activation("a"),
        "b": Conv2D("b", out_channels=4, kernel=1),
        "add": Add("add"),
        "gap": GlobalAvgPool("gap"),
        "fc": Dense("fc", out_features=2),
    }
    edges = [
        ("input", "conv"),
        ("conv", "a"),
        ("conv", "b"),
        ("a", "add"),
        ("b", "add"),
        ("add", "gap"),
        ("gap", "fc"),
    ]
    return ModelGraph("branchy", layers, edges)


class TestValidation:
    def test_chain_builds(self, tiny_model):
        assert tiny_model.num_layers == 10

    def test_chain_requires_input_first(self):
        with pytest.raises(ModelError):
            ModelGraph.chain("bad", [Activation("a")])

    def test_chain_duplicate_names(self):
        with pytest.raises(ModelError):
            ModelGraph.chain(
                "bad", [Input("input", shape=(3, 4, 4)), Activation("x"), Activation("x")]
            )

    def test_empty_raises(self):
        with pytest.raises(ModelError):
            ModelGraph("empty", {}, [])

    def test_cycle_raises(self):
        layers = {
            "input": Input("input", shape=(3, 4, 4)),
            "a": Activation("a"),
            "b": Activation("b"),
        }
        edges = [("input", "a"), ("a", "b"), ("b", "a")]
        with pytest.raises(ModelError):
            ModelGraph("cyclic", layers, edges)

    def test_two_sinks_raise(self):
        layers = {
            "input": Input("input", shape=(3, 4, 4)),
            "a": Activation("a"),
            "b": Activation("b"),
        }
        edges = [("input", "a"), ("input", "b")]
        with pytest.raises(ModelError):
            ModelGraph("twosink", layers, edges)

    def test_unknown_edge_endpoint(self):
        layers = {"input": Input("input", shape=(3, 4, 4))}
        with pytest.raises(ModelError):
            ModelGraph("bad", layers, [("input", "ghost")])

    def test_merge_needs_two_inputs(self):
        layers = {
            "input": Input("input", shape=(3, 4, 4)),
            "add": Add("add"),
        }
        with pytest.raises(ModelError):
            ModelGraph("bad", layers, [("input", "add")])

    def test_nonmerge_single_input(self):
        layers = {
            "input": Input("input", shape=(3, 4, 4)),
            "c": Conv2D("c", out_channels=2, kernel=1),
            "a": Activation("a"),
        }
        edges = [("input", "a"), ("c", "a"), ("input", "c")]
        with pytest.raises(ModelError):
            ModelGraph("bad", layers, edges)

    def test_layer_name_key_mismatch(self):
        with pytest.raises(ModelError):
            ModelGraph("bad", {"x": Input("y", shape=(3, 4, 4))}, [])


class TestInference:
    def test_shapes_propagate(self, tiny_model):
        assert tiny_model.output_shape_of("conv1") == (8, 32, 32)
        assert tiny_model.output_shape_of("pool2") == (16, 8, 8)
        assert tiny_model.output_shape_of("fc") == (10,)

    def test_total_flops_positive(self, tiny_model):
        assert tiny_model.total_flops > 0

    def test_total_flops_is_sum(self, tiny_model):
        total = sum(tiny_model.flops_of(n) for n in tiny_model.topological_order)
        assert total == tiny_model.total_flops

    def test_input_bytes(self, tiny_model):
        assert tiny_model.input_bytes == 3 * 32 * 32 * 4

    def test_params_counted(self, tiny_model):
        # conv1: 3*8*9+8; conv2: 8*16*9+16; fc: 1024*10+10
        assert tiny_model.total_params == (3 * 8 * 9 + 8) + (8 * 16 * 9 + 16) + (
            16 * 8 * 8 * 10 + 10
        )

    def test_topological_order_starts_input(self, tiny_model):
        assert tiny_model.topological_order[0] == "input"

    def test_source_sink(self, tiny_model):
        assert tiny_model.source == "input"
        assert tiny_model.sink == "softmax"


class TestCutPoints:
    def test_chain_every_node_is_cut(self, tiny_model):
        assert len(tiny_model.cut_points) == tiny_model.num_layers

    def test_cut_flops_monotone(self, tiny_model):
        flops = [c.head_flops for c in tiny_model.cut_points]
        assert flops == sorted(flops)

    def test_first_cut_is_input(self, tiny_model):
        assert tiny_model.cut_points[0].name == "input"
        assert tiny_model.cut_points[0].head_flops == 0

    def test_last_cut_is_sink(self, tiny_model):
        last = tiny_model.cut_points[-1]
        assert last.name == tiny_model.sink
        assert last.head_flops == tiny_model.total_flops
        assert last.depth_fraction == pytest.approx(1.0)

    def test_branchy_excludes_branch_nodes(self):
        g = _branchy_graph()
        names = [c.name for c in g.cut_points]
        # a and b are parallel branches: not valid single-tensor cuts
        assert "a" not in names and "b" not in names
        assert "add" in names and "conv" in names

    def test_resnet_cuts_at_block_boundaries(self):
        g = build("resnet18")
        names = {c.name for c in g.cut_points}
        # interior of a residual block is never a cut point
        assert "s1_0_a_conv" not in names
        # block outputs are
        assert "s1_0_relu_out" in names

    def test_head_nodes_of_cut(self):
        g = _branchy_graph()
        head = g.head_nodes("add")
        assert head == {"input", "conv", "a", "b", "add"}

    def test_head_nodes_invalid_cut_raises(self):
        g = _branchy_graph()
        with pytest.raises(ModelError):
            g.head_nodes("a")

    def test_cut_by_name(self, tiny_model):
        c = tiny_model.cut_by_name("pool1")
        assert c.name == "pool1"
        with pytest.raises(ModelError):
            tiny_model.cut_by_name("nope")

    def test_boundary_bytes_match_output(self, tiny_model):
        for c in tiny_model.cut_points:
            assert c.boundary_bytes == tiny_model.output_bytes_of(c.name)


class TestSummary:
    def test_summary_contains_layers(self, tiny_model):
        s = tiny_model.summary()
        assert "conv1" in s and "GFLOPs" in s

    def test_branchy_merge_flops(self):
        g = _branchy_graph()
        assert g.flops_of("add") == 4 * 8 * 8  # (n-1) * elements
