"""Multi-exit transform: attach-point selection, branch costs, invariants."""

import numpy as np
import pytest

from repro.errors import ModelError, PlanError
from repro.models.multiexit import (
    ExitBranch,
    MultiExitModel,
    insert_exits,
    select_attach_points,
)
from repro.models.zoo import build


class TestSelectAttachPoints:
    def test_count(self, tiny_model):
        pts = select_attach_points(tiny_model, 3)
        assert len(pts) == 3

    def test_sorted_and_interior(self, tiny_model):
        pts = select_attach_points(tiny_model, 3)
        idx = [p.index for p in pts]
        assert idx == sorted(idx)
        assert all(0 < p.depth_fraction < 1 for p in pts)

    def test_distinct(self, tiny_model):
        pts = select_attach_points(tiny_model, 4)
        assert len({p.index for p in pts}) == len(pts)

    def test_zero_exits(self, tiny_model):
        assert select_attach_points(tiny_model, 0) == []

    def test_negative_raises(self, tiny_model):
        with pytest.raises(PlanError):
            select_attach_points(tiny_model, -1)


class TestInsertExits:
    def test_final_exit_always_last(self, me_resnet18):
        assert me_resnet18.exits[-1].is_final
        assert me_resnet18.exits[-1].depth_fraction == pytest.approx(1.0)

    def test_exit_count(self, me_resnet18):
        assert me_resnet18.num_exits == 5  # 4 early + final

    def test_exit_depths_increasing(self, me_resnet18):
        d = me_resnet18.exit_depth_fractions
        assert np.all(np.diff(d) > 0)

    def test_exit_accuracies_increasing(self, me_resnet18):
        a = me_resnet18.exit_accuracies
        assert np.all(np.diff(a) > 0)

    def test_competences_increasing(self, me_resnet18):
        assert np.all(np.diff(me_resnet18.competences) > 0)

    def test_branch_flops_positive_for_early_exits(self, me_resnet18):
        for e in me_resnet18.exits[:-1]:
            assert e.branch_flops > 0
        assert me_resnet18.final_exit.branch_flops == 0

    def test_total_flops_include_branch(self, me_resnet18):
        for e in me_resnet18.exits:
            assert e.total_flops == e.backbone_flops + e.branch_flops

    def test_explicit_attach_points(self):
        g = build("alexnet")
        names = [c.name for c in g.cut_points if 0 < c.depth_fraction < 1]
        me = insert_exits(g, attach_points=names[:2])
        assert me.num_exits == 3

    def test_explicit_attach_point_at_sink_raises(self):
        g = build("alexnet")
        with pytest.raises(PlanError):
            insert_exits(g, attach_points=[g.sink])

    def test_cut_arrays_match_backbone(self, me_resnet18):
        cuts = me_resnet18.backbone.cut_points
        assert len(me_resnet18.cut_flops) == len(cuts)
        assert me_resnet18.cut_flops[-1] == cuts[-1].head_flops

    def test_result_bytes_default(self, me_resnet18):
        assert me_resnet18.result_bytes == 4096


class TestMultiExitValidation:
    def _final(self, model, cut_index=None):
        last = model.cut_points[-1]
        return ExitBranch(
            name="final",
            cut_index=last.index if cut_index is None else cut_index,
            attach_node=last.name,
            backbone_flops=last.head_flops,
            branch_flops=0,
            branch_params=0,
            attach_bytes=last.boundary_bytes,
            depth_fraction=1.0,
            accuracy=0.7,
            is_final=True,
        )

    def test_requires_final_exit_deepest(self, tiny_model):
        from repro.models.accuracy import AccuracyModel
        from repro.models.exits import DifficultyDistribution

        early = ExitBranch(
            name="e0",
            cut_index=2,
            attach_node="relu1",
            backbone_flops=100,
            branch_flops=10,
            branch_params=5,
            attach_bytes=64,
            depth_fraction=0.3,
            accuracy=0.4,
        )
        # final marked at a shallower cut than the early exit -> invalid
        with pytest.raises(ModelError):
            MultiExitModel(
                tiny_model,
                [early, self._final(tiny_model, cut_index=1)],
                AccuracyModel(),
                DifficultyDistribution(),
            )

    def test_duplicate_attach_raises(self, tiny_model):
        from repro.models.accuracy import AccuracyModel
        from repro.models.exits import DifficultyDistribution

        f = self._final(tiny_model)
        with pytest.raises(ModelError):
            MultiExitModel(
                tiny_model, [f, f], AccuracyModel(), DifficultyDistribution()
            )

    def test_empty_exits_raises(self, tiny_model):
        from repro.models.accuracy import AccuracyModel
        from repro.models.exits import DifficultyDistribution

        with pytest.raises(ModelError):
            MultiExitModel(tiny_model, [], AccuracyModel(), DifficultyDistribution())
