"""Quantization levels and their integration into surgery."""

import numpy as np
import pytest

from repro.core.plan import SurgeryPlan
from repro.core.surgery import enumerate_features, evaluate_plan
from repro.errors import ConfigError, PlanError
from repro.models.quantization import (
    ALL_LEVELS,
    LEVELS,
    QuantizationLevel,
    quantization_level,
)


class TestLevels:
    def test_registry_complete(self):
        assert set(ALL_LEVELS) == set(LEVELS)

    def test_fp32_is_identity(self):
        l = quantization_level("fp32")
        assert l.compute_speedup == 1.0
        assert l.wire_scale == 1.0
        assert l.accuracy_delta == 0.0

    def test_ordering(self):
        fp16, int8 = quantization_level("fp16"), quantization_level("int8")
        assert 1.0 < fp16.compute_speedup < int8.compute_speedup
        assert int8.wire_scale < fp16.wire_scale < 1.0
        assert int8.accuracy_delta < fp16.accuracy_delta <= 0.0

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            quantization_level("fp64")

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(compute_speedup=0.5),
            dict(wire_scale=0.0),
            dict(wire_scale=1.5),
            dict(accuracy_delta=0.1),
        ],
    )
    def test_invalid_level(self, kwargs):
        base = dict(name="x", compute_speedup=2.0, wire_scale=0.5, accuracy_delta=-0.01)
        base.update(kwargs)
        with pytest.raises(ConfigError):
            QuantizationLevel(**base)


class TestSurgeryIntegration:
    def _plan(self, model, q):
        return SurgeryPlan(
            kept_exits=(model.num_exits - 1,),
            thresholds=(0.0,),
            partition_cut=0,
            quantization=q,
        )

    def test_unknown_quantization_in_plan(self):
        with pytest.raises(PlanError):
            SurgeryPlan(kept_exits=(0,), thresholds=(0.0,), partition_cut=0, quantization="fp64")

    def test_int8_scales_costs(self, me_resnet18):
        f32 = evaluate_plan(me_resnet18, self._plan(me_resnet18, "fp32"))
        i8 = evaluate_plan(me_resnet18, self._plan(me_resnet18, "int8"))
        lvl = quantization_level("int8")
        assert i8.srv_flops == pytest.approx(f32.srv_flops / lvl.compute_speedup)
        assert i8.wire_bytes == pytest.approx(f32.wire_bytes * lvl.wire_scale)

    def test_int8_costs_accuracy(self, me_resnet18):
        f32 = evaluate_plan(me_resnet18, self._plan(me_resnet18, "fp32"))
        i8 = evaluate_plan(me_resnet18, self._plan(me_resnet18, "int8"))
        assert i8.accuracy == pytest.approx(
            f32.accuracy + quantization_level("int8").accuracy_delta, abs=1e-9
        )

    def test_enumeration_with_levels_grows(self, me_alexnet):
        base = enumerate_features(me_alexnet, threshold_grid=(0.8,), max_cuts=5)
        quant = enumerate_features(
            me_alexnet, threshold_grid=(0.8,), max_cuts=5, quantization_levels=ALL_LEVELS
        )
        assert len(quant) == 3 * len(base)

    def test_enumeration_matches_evaluate(self, me_alexnet):
        feats = enumerate_features(
            me_alexnet, threshold_grid=(0.8,), max_cuts=4, quantization_levels=("int8",)
        )
        for f in feats[::7]:
            ref = evaluate_plan(me_alexnet, f.plan)
            assert f.dev_flops == pytest.approx(ref.dev_flops, rel=1e-9)
            assert f.wire_bytes == pytest.approx(ref.wire_bytes, rel=1e-9)
            assert f.accuracy == pytest.approx(ref.accuracy, rel=1e-9)

    def test_empty_levels_raise(self, me_alexnet):
        with pytest.raises(PlanError):
            enumerate_features(me_alexnet, quantization_levels=())

    def test_sim_realization_scales(self, me_resnet18):
        from repro.sim.execution import realize_request

        rng = np.random.default_rng(0)
        p32 = self._plan(me_resnet18, "fp32")
        p8 = self._plan(me_resnet18, "int8")
        d32 = realize_request(me_resnet18, p32, 0.5, rng)
        d8 = realize_request(me_resnet18, p8, 0.5, rng)
        lvl = quantization_level("int8")
        assert d8.srv_flops == pytest.approx(d32.srv_flops / lvl.compute_speedup)
        assert d8.up_bytes == pytest.approx(d32.up_bytes * lvl.wire_scale)

    def test_quantized_plan_speeds_up_starved_link(self, me_resnet18, pi4, edge_gpu, latency_model):
        """On a thin link the int8 plan's smaller boundary wins."""
        from repro.core.candidates import CandidateSet
        from repro.core.plan import TaskSpec
        from repro.network.link import Link
        from repro.units import mbps

        task = TaskSpec("t", me_resnet18, "d", accuracy_floor=0.55)
        cs32 = CandidateSet(task, enumerate_features(me_resnet18, threshold_grid=(0.8,)))
        csq = CandidateSet(
            task,
            enumerate_features(me_resnet18, threshold_grid=(0.8,), quantization_levels=ALL_LEVELS),
        )
        link = Link(mbps(3), rtt_s=10e-3)
        _, lat32 = cs32.filter_accuracy(0.55).best(pi4, latency_model, server=edge_gpu, link=link)
        _, latq = csq.filter_accuracy(0.55).best(pi4, latency_model, server=edge_gpu, link=link)
        assert latq < lat32
