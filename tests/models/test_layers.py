"""Unit tests for the layer shape/FLOPs/params algebra."""

import math

import pytest

from repro.errors import ShapeError
from repro.models.layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2D,
    Dense,
    DepthwiseConv2D,
    Dropout,
    Flatten,
    GlobalAvgPool,
    Input,
    LocalResponseNorm,
    Pool,
    Softmax,
    conv_out_hw,
    layer_params,
    shape_bytes,
    shape_elements,
)


class TestShapeHelpers:
    def test_elements(self):
        assert shape_elements((3, 4, 5)) == 60

    def test_elements_flat(self):
        assert shape_elements((7,)) == 7

    def test_bytes_float32(self):
        assert shape_bytes((2, 2)) == 16

    def test_conv_out_basic(self):
        assert conv_out_hw(224, 3, 1, 1) == 224

    def test_conv_out_stride(self):
        assert conv_out_hw(224, 7, 2, 3) == 112

    def test_conv_out_collapse_raises(self):
        with pytest.raises(ShapeError):
            conv_out_hw(2, 5, 1, 0)


class TestInput:
    def test_output_shape_ignores_arg(self):
        layer = Input("input", shape=(3, 8, 8))
        assert layer.output_shape(()) == (3, 8, 8)

    def test_zero_flops(self):
        assert Input("input", shape=(3, 8, 8)).flops(()) == 0


class TestConv2D:
    def test_output_shape(self):
        conv = Conv2D("c", out_channels=16, kernel=3, stride=1, padding=1)
        assert conv.output_shape((3, 32, 32)) == (16, 32, 32)

    def test_flops_formula(self):
        conv = Conv2D("c", out_channels=16, kernel=3, padding=1)
        # 2 * k*k*Cin*Cout*H*W
        assert conv.flops((3, 32, 32)) == 2 * 9 * 3 * 16 * 32 * 32

    def test_params_with_bias(self):
        conv = Conv2D("c", out_channels=16, kernel=3)
        assert conv.params_for((3, 32, 32)) == 9 * 3 * 16 + 16

    def test_params_without_bias(self):
        conv = Conv2D("c", out_channels=16, kernel=3, bias=False)
        assert conv.params_for((3, 32, 32)) == 9 * 3 * 16

    def test_rejects_flat_input(self):
        with pytest.raises(ShapeError):
            Conv2D("c", out_channels=4).output_shape((10,))

    def test_stride_downsamples(self):
        conv = Conv2D("c", out_channels=8, kernel=3, stride=2, padding=1)
        assert conv.output_shape((3, 32, 32)) == (8, 16, 16)


class TestDepthwiseConv2D:
    def test_preserves_channels(self):
        dw = DepthwiseConv2D("d", kernel=3, stride=1, padding=1)
        assert dw.output_shape((32, 16, 16)) == (32, 16, 16)

    def test_flops_no_cross_channel(self):
        dw = DepthwiseConv2D("d", kernel=3, padding=1)
        assert dw.flops((32, 16, 16)) == 2 * 9 * 32 * 16 * 16

    def test_params(self):
        dw = DepthwiseConv2D("d", kernel=3)
        assert dw.params_for((32, 16, 16)) == 9 * 32 + 32


class TestPool:
    def test_max_pool_shape(self):
        assert Pool("p", kernel=2, stride=2).output_shape((8, 16, 16)) == (8, 8, 8)

    def test_flops_proportional_to_window(self):
        p = Pool("p", kernel=3, stride=1, padding=1)
        assert p.flops((4, 8, 8)) == 9 * 4 * 8 * 8

    def test_global_avg_pool(self):
        assert GlobalAvgPool("g").output_shape((512, 7, 7)) == (512,)

    def test_global_avg_pool_flops(self):
        assert GlobalAvgPool("g").flops((512, 7, 7)) == 512 * 49


class TestFlattenDense:
    def test_flatten(self):
        assert Flatten("f").output_shape((4, 3, 3)) == (36,)

    def test_flatten_zero_cost(self):
        assert Flatten("f").flops((4, 3, 3)) == 0

    def test_dense_shape(self):
        assert Dense("d", out_features=10).output_shape((36,)) == (10,)

    def test_dense_flops(self):
        assert Dense("d", out_features=10).flops((36,)) == 2 * 36 * 10

    def test_dense_params(self):
        assert Dense("d", out_features=10).params_for((36,)) == 36 * 10 + 10

    def test_dense_rejects_chw(self):
        with pytest.raises(ShapeError):
            Dense("d", out_features=10).output_shape((4, 3, 3))


class TestElementwise:
    @pytest.mark.parametrize(
        "layer,per_elem",
        [
            (Activation("a"), 1),
            (BatchNorm("b"), 2),
            (LocalResponseNorm("l"), 5),
            (Softmax("s"), 5),
            (Dropout("d"), 0),
        ],
    )
    def test_flops_per_element(self, layer, per_elem):
        assert layer.flops((4, 5, 5)) == per_elem * 100

    @pytest.mark.parametrize(
        "layer",
        [Activation("a"), BatchNorm("b"), Dropout("d"), Softmax("s")],
    )
    def test_shape_preserving(self, layer):
        assert layer.output_shape((4, 5, 5)) == (4, 5, 5)

    def test_batchnorm_params(self):
        assert BatchNorm("b").params_for((16, 8, 8)) == 32


class TestMergeLayers:
    def test_add_shape(self):
        add = Add("a")
        assert add.merge_output_shape([(8, 4, 4), (8, 4, 4)]) == (8, 4, 4)

    def test_add_mismatch_raises(self):
        with pytest.raises(ShapeError):
            Add("a").merge_output_shape([(8, 4, 4), (4, 4, 4)])

    def test_add_empty_raises(self):
        with pytest.raises(ShapeError):
            Add("a").merge_output_shape([])

    def test_add_merge_flops(self):
        assert Add("a").merge_flops([(8, 4, 4), (8, 4, 4)]) == 128

    def test_add_is_merge(self):
        assert Add("a").is_merge

    def test_concat_channels(self):
        c = Concat("c")
        assert c.merge_output_shape([(8, 4, 4), (16, 4, 4)]) == (24, 4, 4)

    def test_concat_spatial_mismatch_raises(self):
        with pytest.raises(ShapeError):
            Concat("c").merge_output_shape([(8, 4, 4), (8, 2, 2)])

    def test_concat_rejects_flat(self):
        with pytest.raises(ShapeError):
            Concat("c").merge_output_shape([(8,), (8,)])

    def test_concat_zero_flops(self):
        assert Concat("c").merge_flops([(8, 4, 4), (8, 4, 4)]) == 0


class TestLayerParamsHelper:
    def test_uses_params_for_when_present(self):
        conv = Conv2D("c", out_channels=4, kernel=1)
        assert layer_params(conv, (3, 8, 8)) == 3 * 4 + 4

    def test_defaults_to_zero(self):
        assert layer_params(Activation("a"), (3, 8, 8)) == 0

    def test_output_bytes(self):
        conv = Conv2D("c", out_channels=2, kernel=1)
        assert conv.output_bytes((3, 4, 4)) == 2 * 4 * 4 * 4
