"""SLO monitors: target resolution, burn-rate alerting, report determinism.

The multi-window multi-burn-rate alert must fire on a sustained error cliff,
stay silent on a single-window blip (the slow window suppresses it), and be
a pure function of the windowed integer state so its fingerprint is stable.
"""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.telemetry.slo import SLOPolicy, SLOTarget, evaluate_slos
from repro.telemetry.windows import WindowConfig, WindowedMetrics


def _feed(wm, task, window, n, met_frac):
    """Put n completions into one window, met_frac of them meeting deadline."""
    n_met = int(round(n * met_frac))
    t = (window + 0.5) * wm.config.window_s
    comp = np.full(n, t)
    lat = np.full(n, 0.01)
    met = np.zeros(n, dtype=bool)
    met[:n_met] = True
    wm.observe(task, comp, lat, met)


class TestPolicy:
    def test_target_validation(self):
        with pytest.raises(ConfigError, match="non-empty task pattern"):
            SLOTarget(task="", target=0.9)
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ConfigError, match="in \\(0, 1\\)"):
                SLOTarget(target=bad)

    def test_policy_validation(self):
        with pytest.raises(ConfigError, match="at least one target"):
            SLOPolicy(targets=())
        with pytest.raises(ConfigError, match="fast_windows"):
            SLOPolicy(fast_windows=0)
        with pytest.raises(ConfigError, match="fast_windows"):
            SLOPolicy(fast_windows=5, slow_windows=3)
        with pytest.raises(ConfigError, match="burn-rate"):
            SLOPolicy(fast_burn=0.0)

    def test_resolve_first_match_wins(self):
        policy = SLOPolicy(
            targets=(
                SLOTarget(task="cam*", target=0.999),
                SLOTarget(task="*", target=0.95),
            )
        )
        assert policy.resolve("cam3") == 0.999
        assert policy.resolve("drone1") == 0.95
        # catch-all first would shadow the specific class
        shadowed = SLOPolicy(
            targets=(SLOTarget(task="*", target=0.95), SLOTarget(task="cam*", target=0.999))
        )
        assert shadowed.resolve("cam3") == 0.95

    def test_unmatched_tasks_skipped(self):
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 5.0)
        _feed(wm, "cam0", 0, 10, 1.0)
        _feed(wm, "drone0", 0, 10, 1.0)
        report = evaluate_slos(wm, SLOPolicy(targets=(SLOTarget(task="cam*", target=0.9),)))
        assert set(report.per_task) == {"cam0"}


class TestEvaluation:
    def test_healthy_run_is_ok(self):
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 10.0)
        for w in range(10):
            _feed(wm, "t", w, 200, 1.0)
        report = evaluate_slos(wm, SLOPolicy(targets=(SLOTarget(target=0.99),)))
        t = report.per_task["t"]
        assert report.ok and t.ok and t.status == "OK"
        assert t.achieved == 1.0 and t.budget_spent == 0.0 and not t.alerts

    def test_sustained_cliff_pages(self):
        # 99% target → 1% budget.  A sustained 50% miss rate burns at 50x,
        # far above both the 14.4x fast and 6x slow thresholds once the
        # trailing windows fill with the cliff.
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 40.0)
        for w in range(20):
            _feed(wm, "t", w, 100, 1.0)
        for w in range(20, 40):
            _feed(wm, "t", w, 100, 0.5)
        report = evaluate_slos(wm, SLOPolicy(targets=(SLOTarget(target=0.99),)))
        t = report.per_task["t"]
        assert t.alerts and t.status == "PAGE"
        assert not report.ok
        assert all(a.window >= 20 for a in t.alerts)
        assert report.alerts() == t.alerts

    def test_single_window_blip_does_not_page(self):
        # One bad window out of 40: the fast burn spikes but the 30-window
        # slow burn stays dilute, so no alert — that is the whole point of
        # the two-window recipe.
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 40.0)
        for w in range(40):
            _feed(wm, "t", w, 100, 0.5 if w == 10 else 1.0)
        report = evaluate_slos(wm, SLOPolicy(targets=(SLOTarget(target=0.99),)))
        t = report.per_task["t"]
        assert not t.alerts
        assert t.status == "BURN"  # budget overspent overall, but no page
        assert t.fast_burn.max() > report.policy.fast_burn

    def test_losses_and_sheds_burn_budget(self):
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 4.0)
        _feed(wm, "t", 0, 98, 1.0)
        wm.mark("t", 0.5, "lost")
        wm.mark("t", 0.5, "shed")
        report = evaluate_slos(wm, SLOPolicy(targets=(SLOTarget(target=0.99),)))
        t = report.per_task["t"]
        assert t.eligible == 100 and t.errors == 2
        assert t.achieved == pytest.approx(0.98)
        assert t.budget_spent == pytest.approx(2.0)

    def test_empty_chunk_registers_nothing(self):
        # Empty chunks are a no-op: no per-task state is allocated, so idle
        # task classes cost no memory and produce no SLO rows.
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 4.0)
        wm.observe("t", np.empty(0), np.empty(0), np.empty(0, dtype=bool))
        assert wm.tasks() == []
        assert evaluate_slos(wm).per_task == {}

    def test_zero_traffic_windows_burn_nothing(self):
        # Traffic only in window 0: the later trailing windows see zero
        # eligible requests and must report burn 0.0, not NaN.
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 10.0)
        _feed(wm, "t", 0, 50, 0.5)
        t = evaluate_slos(wm, SLOPolicy(targets=(SLOTarget(target=0.99),))).per_task["t"]
        assert np.isfinite(t.fast_burn).all() and np.isfinite(t.slow_burn).all()
        assert t.fast_burn[5] == 0.0  # fast window slid past the traffic
        assert t.eligible == 50 and t.errors == 25


class TestReport:
    def _report(self):
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 20.0)
        for w in range(20):
            _feed(wm, "t0", w, 100, 0.95 if w >= 15 else 1.0)
            _feed(wm, "t1", w, 50, 1.0)
        return evaluate_slos(wm, SLOPolicy(targets=(SLOTarget(target=0.99),)))

    def test_fingerprint_deterministic(self):
        assert self._report().fingerprint() == self._report().fingerprint()

    def test_fingerprint_sees_state(self):
        a = self._report()
        b = self._report()
        b.per_task["t0"].errors += 1
        assert a.fingerprint() != b.fingerprint()

    def test_as_dict_and_format(self):
        import json

        report = self._report()
        d = report.as_dict()
        assert set(d["tasks"]) == {"t0", "t1"}
        entry = d["tasks"]["t0"]
        assert set(entry) >= {
            "target", "eligible", "errors", "achieved", "budget_spent", "status", "alerts",
        }
        json.dumps(d)
        text = report.format()
        assert "t0" in text and "t1" in text and "status" in text
