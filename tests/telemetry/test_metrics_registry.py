"""Metrics registry: counters, gauges, histograms, and the PerfCounters bridge."""

import json

import pytest

from repro.profiling.counters import PerfCounters
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_monotonic(self):
        c = Counter("work")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot(self):
        c = Counter("work")
        c.inc(3)
        assert c.snapshot() == {"type": "counter", "value": 3}


class TestGauge:
    def test_aggregates(self):
        g = Gauge("depth")
        for v in (2.0, 5.0, 1.0):
            g.set(v)
        snap = g.snapshot()
        assert snap["value"] == 1.0 and snap["min"] == 1.0 and snap["max"] == 5.0
        assert snap["count"] == 3

    def test_timestamped_series(self):
        g = Gauge("util")
        g.set(0.5, t=1.0)
        g.set(0.75, t=2.0)
        g.set(0.9)  # untimestamped samples skip the series
        assert g.samples == [(1.0, 0.5), (2.0, 0.75)]
        assert g.snapshot()["series_len"] == 2

    def test_empty_snapshot(self):
        snap = Gauge("idle").snapshot()
        assert snap["value"] is None and snap["min"] is None and snap["count"] == 0


class TestHistogram:
    def test_bucketing_and_overflow(self):
        h = Histogram("lat", bounds=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]
        assert h.overflow == 1
        assert h.total == 4
        assert h.mean == pytest.approx((0.5 + 5.0 + 50.0 + 500.0) / 4)

    def test_default_buckets_are_ms_scale(self):
        h = Histogram("lat")
        assert h.bounds == DEFAULT_LATENCY_BUCKETS_MS
        h.observe(150.0)
        assert h.counts[h.bounds.index(200.0)] == 1

    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=(5.0, 5.0))
        with pytest.raises(ValueError):
            Histogram("bad", bounds=())


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("g") is reg.gauge("g")
        assert len(reg) == 2 and "a" in reg and reg.names() == ["a", "g"]

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_counters_prefix_filter(self):
        reg = MetricsRegistry()
        reg.counter("solver.calls").inc(2)
        reg.counter("sim.requests").inc(7)
        reg.gauge("solver.time").set(1.0)
        assert reg.counters("solver.") == {"solver.calls": 2}
        assert reg.counters() == {"sim.requests": 7, "solver.calls": 2}

    def test_jsonl_round_trips(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(4)
        reg.gauge("g").set(0.25, t=1.5)
        reg.histogram("h", bounds=(10.0,)).observe(3.0)
        path = str(tmp_path / "metrics.jsonl")
        reg.export_jsonl(path)
        objs = [json.loads(ln) for ln in open(path).read().splitlines()]
        assert {o["name"] for o in objs} == {"c", "g", "h"}
        by_name = {o["name"]: o for o in objs}
        assert by_name["c"]["value"] == 4
        assert by_name["h"]["total"] == 1

    def test_dump_text_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(2.0)
        reg.histogram("h").observe(1.0)
        text = reg.dump_text()
        for name in ("c", "g", "h"):
            assert name in text

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert len(reg) == 0

    def test_global_registry_swap(self):
        old = get_registry()
        try:
            fresh = set_registry(MetricsRegistry())
            assert get_registry() is fresh
        finally:
            set_registry(old)


class TestPerfCountersBridge:
    def test_publish_registers_counters_and_gauge(self):
        perf = PerfCounters(
            solve_s=0.5, allocate_calls=4, latency_evals=320, restarts=2
        )
        reg = MetricsRegistry()
        perf.publish(reg)
        assert reg.counter("solver.allocate_calls").value == 4
        assert reg.counter("solver.latency_evals").value == 320
        assert reg.counter("solver.restarts").value == 2
        assert reg.gauge("solver.solve_s").value == 0.5

    def test_merged_is_order_independent(self):
        streams = {
            2: PerfCounters(allocate_calls=10, latency_evals=7),
            0: PerfCounters(allocate_calls=1, latency_evals=2),
            1: PerfCounters(allocate_calls=100, latency_evals=50),
        }
        forward = PerfCounters.merged(streams)
        backward = PerfCounters.merged(dict(reversed(list(streams.items()))))
        assert forward.as_dict() == backward.as_dict()
        assert forward.allocate_calls == 111
        assert forward.latency_evals == 59
