"""Windowed SLO aggregation: layout, scalar ≡ vectorized feeds, exact merge.

Contracts under test (see DESIGN.md §9):

- the scalar event-loop feed (``observe_one``) and the vectorized fast-path
  feed (``observe``) produce **bit-identical** integer state for the same
  observations, in any order — the basis of the obs gate's fingerprint check;
- accumulators merge exactly (integer adds, compensated float adds) and
  refuse mismatched layouts;
- memory is bounded up front: a layout wider than the per-task cell guard is
  rejected at construction, not discovered at request 900k.
"""

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.telemetry.windows import (
    MARK_KINDS,
    KahanSum,
    WindowConfig,
    WindowedMetrics,
)


def _filled(seed: int, n: int = 500, horizon: float = 10.0) -> WindowedMetrics:
    """A WindowedMetrics filled from a seeded synthetic workload."""
    rng = np.random.default_rng(seed)
    wm = WindowedMetrics(WindowConfig(window_s=1.0), horizon)
    comp = np.sort(rng.uniform(0.0, horizon + 2.0, n))  # some drain past horizon
    lat = rng.exponential(0.05, n)
    met = lat <= 0.08
    wm.observe("t0", comp, lat, met)
    wm.observe("t1", comp[: n // 2], lat[: n // 2] * 3.0, met[: n // 2])
    return wm


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window_s=0.0),
            dict(window_s=-1.0),
            dict(bin_s=0.0),
            dict(bin_s=0.5, max_s=0.5),  # max_s must exceed bin_s
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            WindowConfig(**kwargs)

    def test_layout(self):
        cfg = WindowConfig(window_s=1.0, bin_s=5e-3, max_s=2.0)
        assert cfg.num_bins == 400
        # 10 tiling windows + 1 clamp window for drain past the horizon
        assert cfg.num_windows(10.0) == 11
        assert cfg.num_windows(9.5) == 11  # ceil
        with pytest.raises(ConfigError):
            cfg.num_windows(0.0)

    def test_cell_guard_rejects_unbounded_layouts(self):
        with pytest.raises(ConfigError, match="histogram cells per task"):
            WindowedMetrics(WindowConfig(window_s=1e-3, bin_s=1e-4, max_s=2.0), 100.0)


class TestFeedsIdentity:
    def test_scalar_equals_vectorized(self):
        rng = np.random.default_rng(7)
        n = 400
        comp = np.sort(rng.uniform(0.0, 12.0, n))
        lat = rng.exponential(0.05, n)
        met = lat <= 0.07
        cfg = WindowConfig(window_s=0.5)
        vec = WindowedMetrics(cfg, 10.0)
        vec.observe("t", comp, lat, met)
        one = WindowedMetrics(cfg, 10.0)
        for c, l, m in zip(comp, lat, met):
            one.observe_one("t", float(c), float(l), bool(m))
        assert one.fingerprint() == vec.fingerprint()
        np.testing.assert_array_equal(one.per_task["t"].counts, vec.per_task["t"].counts)
        np.testing.assert_array_equal(one.per_task["t"].hist, vec.per_task["t"].hist)
        # Kahan sums agree to float tolerance (excluded from the fingerprint)
        np.testing.assert_allclose(
            one.window_mean_latency_s("t"), vec.window_mean_latency_s("t"),
            rtol=1e-12, equal_nan=True,
        )

    def test_order_independent_integer_state(self):
        rng = np.random.default_rng(3)
        n = 300
        comp = rng.uniform(0.0, 8.0, n)
        lat = rng.exponential(0.04, n)
        met = lat <= 0.05
        cfg = WindowConfig()
        a = WindowedMetrics(cfg, 8.0)
        a.observe("t", comp, lat, met)
        perm = rng.permutation(n)
        b = WindowedMetrics(cfg, 8.0)
        b.observe("t", comp[perm], lat[perm], met[perm])
        assert a.fingerprint() == b.fingerprint()

    def test_chunked_equals_one_shot(self):
        rng = np.random.default_rng(5)
        n = 256
        comp = np.sort(rng.uniform(0.0, 6.0, n))
        lat = rng.exponential(0.03, n)
        met = lat <= 0.05
        cfg = WindowConfig(window_s=0.25)
        whole = WindowedMetrics(cfg, 6.0)
        whole.observe("t", comp, lat, met)
        chunked = WindowedMetrics(cfg, 6.0)
        for lo in range(0, n, 37):
            sl = slice(lo, lo + 37)
            chunked.observe("t", comp[sl], lat[sl], met[sl])
        assert whole.fingerprint() == chunked.fingerprint()

    def test_drain_past_horizon_clamps_to_last_window(self):
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 4.0)
        wm.observe_one("t", 99.0, 0.01, True)  # far past the horizon
        assert wm.per_task["t"].counts[-1] == 1
        assert wm.per_task["t"].counts[:-1].sum() == 0


class TestMarksAndAggregates:
    def test_marks_feed_error_budget(self):
        wm = WindowedMetrics(WindowConfig(window_s=1.0), 4.0)
        wm.observe_one("t", 0.5, 0.01, True)
        wm.mark("t", 0.6, "lost")
        wm.mark("t", 0.7, "shed")
        wm.mark("t", 0.8, "degraded")
        assert wm.window_errors("t")[0] == 2  # lost + shed; degraded annotates
        assert wm.window_eligible("t")[0] == 3  # completion + lost + shed
        with pytest.raises(ConfigError, match="mark kind"):
            wm.mark("t", 0.0, "exploded")
        assert set(MARK_KINDS) == {"lost", "shed", "degraded"}

    def test_quantiles_and_snapshot(self):
        wm = _filled(0)
        p99 = wm.window_quantile("t0", 99)
        counts = wm.window_counts("t0")
        assert np.isnan(p99[counts == 0]).all()
        assert (p99[counts > 0] > 0).all()
        with pytest.raises(SimulationError):
            wm.window_quantile("t0", 101)
        snap = wm.snapshot()
        assert snap["n_windows"] == wm.n_windows
        t0 = snap["tasks"]["t0"]
        assert len(t0["counts"]) == wm.n_windows
        assert sum(t0["counts"]) == int(counts.sum())
        # snapshot is JSON-able (None for NaN, plain lists)
        import json

        json.dumps(snap)


class TestMerge:
    def test_merge_is_exact(self):
        a, b = _filled(1), _filled(2)
        pooled = WindowedMetrics(a.config, a.horizon_s).merge(a).merge(b)
        for task in ("t0", "t1"):
            np.testing.assert_array_equal(
                pooled.per_task[task].counts,
                a.per_task[task].counts + b.per_task[task].counts,
            )
            np.testing.assert_array_equal(
                pooled.per_task[task].hist,
                a.per_task[task].hist + b.per_task[task].hist,
            )
        assert pooled.total_count == a.total_count + b.total_count
        assert pooled.total_met == a.total_met + b.total_met

    def test_merge_rejects_layout_mismatch(self):
        a = WindowedMetrics(WindowConfig(window_s=1.0), 10.0)
        with pytest.raises(SimulationError, match="different layouts"):
            a.merge(WindowedMetrics(WindowConfig(window_s=0.5), 10.0))
        with pytest.raises(SimulationError, match="different layouts"):
            a.merge(WindowedMetrics(WindowConfig(window_s=1.0), 20.0))


class TestKahan:
    def test_compensated_sum_beats_naive(self):
        ks = KahanSum()
        vals = [1e16, 1.0, -1e16, 1.0]
        naive = 0.0
        for v in vals:
            ks.add(v)
            naive += v
        assert ks.value == 2.0
        assert naive != 2.0  # the case compensation exists for
