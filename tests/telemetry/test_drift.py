"""Drift detection: seeded determinism, calibration power, shard lifting.

Power note for the permutation calibration: with ``permutations`` P the
smallest achievable p-value is 1/(P+1), and a perfect two-window split of
2·w distinct samples has exact p ≈ 2/C(2w, w).  At alpha=0.01 that means
``window=4`` can *never* fire (p ≈ 0.029 regardless of P) — the scenarios
below use window ≥ 6 and P ≥ 200 so a real shift is actually detectable.
The two-window test is also *transient*: once the full history sits at the
new level the windows re-agree, so assertions run mid-transition.
"""

import pytest

from repro.errors import ConfigError
from repro.telemetry.drift import DriftConfig, DriftDetector, ShardDriftMonitor


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(window=1),
            dict(calibration="bayes"),
            dict(permutations=0),
            dict(alpha=0.0),
            dict(alpha=1.0),
            dict(threshold=0.0),
            dict(min_rel_shift=-0.1),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DriftConfig(**kwargs)


class TestZScore:
    CFG = DriftConfig(window=6, calibration="zscore", threshold=4.0, min_rel_shift=0.1)

    def test_detects_level_shift_mid_transition(self):
        det = DriftDetector(self.CFG, seed=0)
        # noisy-but-stable fill, then a 2.5x jump
        base = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0]
        for v in base * 2:
            det.update("s", v)
        assert not det.is_drifted("s")
        fired = False
        for v in [25.0, 24.8, 25.2, 25.1, 24.9, 25.0]:
            fired = det.update("s", v) or fired
        assert fired and det.is_drifted("s")
        assert det.score("s") > self.CFG.threshold
        assert det.drifted() == ("s",)

    def test_rel_floor_suppresses_wobble(self):
        # shifts below min_rel_shift of the reference mean never alarm, even
        # with a near-zero reference std that would explode a raw z-score
        det = DriftDetector(self.CFG, seed=0)
        for _ in range(2 * self.CFG.window):
            det.update("s", 100.0)
        det.update("s", 100.5)  # 0.5% shift, floor is 10%
        assert not det.is_drifted("s")
        assert det.score("s") == 0.0

    def test_reset_forgets(self):
        det = DriftDetector(self.CFG, seed=0)
        for v in [10.0] * 12 + [25.0] * 6:
            det.update("s", v)
        assert det.is_drifted("s")
        det.reset("s")
        assert not det.is_drifted("s") and det.drifted() == ()


class TestPermutation:
    CFG = DriftConfig(window=6, calibration="permutation", permutations=400, alpha=0.01)

    @staticmethod
    def _drive(det, key, scale=1.0):
        base = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0]
        verdicts = []
        for v in base * 2 + [25.0, 24.8, 25.2, 25.1, 24.9, 25.0]:
            verdicts.append(det.update(key, v * scale))
        return verdicts

    def test_detects_shift_and_is_seed_deterministic(self):
        a = self._drive(DriftDetector(self.CFG, seed=42), "s")
        b = self._drive(DriftDetector(self.CFG, seed=42), "s")
        assert a == b
        assert any(a)  # the 2.5x shift fires at some point in the transition

    def test_verdicts_independent_of_stream_interleaving(self):
        # the RNG is derived per (seed, key, sample-count): feeding a second
        # stream in between must not change the first stream's verdicts
        solo = DriftDetector(self.CFG, seed=7)
        solo_verdicts = self._drive(solo, "a")
        mixed = DriftDetector(self.CFG, seed=7)
        base = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0]
        seq = base * 2 + [25.0, 24.8, 25.2, 25.1, 24.9, 25.0]
        mixed_verdicts = []
        for v in seq:
            mixed.update("b", 3.0)  # interleaved unrelated stream
            mixed_verdicts.append(mixed.update("a", v))
        assert mixed_verdicts == solo_verdicts

    def test_underpowered_window_cannot_fire(self):
        # window=4 → exact p floor ≈ 2/C(8,4) ≈ 0.029 > alpha=0.01: even an
        # arbitrarily large shift must not alarm.  Guards against silently
        # shipping configs that look strict but are structurally deaf.
        cfg = DriftConfig(window=4, calibration="permutation", permutations=2000, alpha=0.01)
        det = DriftDetector(cfg, seed=0)
        for v in [10.0, 10.2, 9.8, 10.1] * 2 + [1000.0, 999.0, 1001.0, 1000.5]:
            det.update("s", v)
        assert not det.is_drifted("s")


class TestShardMonitor:
    CFG = DriftConfig(window=6, calibration="permutation", permutations=400, alpha=0.01)

    def test_needs_mapping(self):
        with pytest.raises(ConfigError, match="task->shard"):
            ShardDriftMonitor({}, self.CFG)

    def test_flags_only_perturbed_shard(self):
        # two shards, two tasks each; perturb only shard 1's arrival rates
        # 2.5x and assert mid-transition that shard 1 — and only shard 1 —
        # is flagged.  This is the seeded scenario from the acceptance
        # criteria.
        mapping = {"t0": 0, "t1": 0, "t2": 1, "t3": 1}
        mon = ShardDriftMonitor(mapping, self.CFG, seed=3)
        base = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0]
        for v in base * 2:
            for task in mapping:
                mon.observe(task, arrival_rate=v, service_time_s=0.02)
        assert mon.drifted_shards() == ()
        for v in [25.0, 24.8, 25.2, 25.1, 24.9, 25.0]:
            for task in mapping:
                rate = v if mapping[task] == 1 else v / 2.5
                mon.observe(task, arrival_rate=rate, service_time_s=0.02)
            if mon.drifted_shards():
                break
        assert mon.drifted_shards() == (1,)
        assert all(s.startswith(("t2/", "t3/")) for s in mon.drifted_streams())
        mon.reset_shard(1)
        assert mon.drifted_shards() == ()

    def test_unknown_task_ignored(self):
        mon = ShardDriftMonitor({"t0": 0}, self.CFG)
        for v in [1.0] * 12 + [99.0] * 6:
            mon.observe("ghost", arrival_rate=v)
        assert mon.drifted_streams() == ()
