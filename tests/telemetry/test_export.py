"""Exporters and dashboard: OpenMetrics shapes, JSONL round-trip, rendering."""

import math

import pytest

from repro.telemetry.dashboard import render_dashboard, sparkline
from repro.telemetry.export import (
    MetricsStreamWriter,
    _metric_name,
    export_openmetrics,
    openmetrics_text,
    read_metrics_stream,
)
from repro.telemetry.metrics import MetricsRegistry


def _registry():
    reg = MetricsRegistry()
    reg.counter("sim.requests").inc(42)
    reg.gauge("sim.queue_depth.edge0").set(3.0)
    reg.gauge("sim.queue_depth.edge0").set(7.0)
    reg.histogram("sim.latency_ms", bounds=(1.0, 10.0)).observe(0.5)
    reg.histogram("sim.latency_ms", bounds=(1.0, 10.0)).observe(5.0)
    reg.histogram("sim.latency_ms", bounds=(1.0, 10.0)).observe(50.0)
    return reg


class TestOpenMetrics:
    def test_document_shape(self):
        text = openmetrics_text(_registry())
        lines = text.strip().splitlines()
        assert lines[-1] == "# EOF"
        assert "# TYPE repro_sim_requests counter" in lines
        assert "repro_sim_requests_total 42.0" in lines
        # gauge carries value plus min/max companions
        assert "repro_sim_queue_depth_edge0 7.0" in lines
        assert "repro_sim_queue_depth_edge0_min 3.0" in lines
        assert "repro_sim_queue_depth_edge0_max 7.0" in lines
        # histogram buckets are cumulative and end with +Inf == _count
        assert 'repro_sim_latency_ms_bucket{le="1.0"} 1' in lines
        assert 'repro_sim_latency_ms_bucket{le="10.0"} 2' in lines
        assert 'repro_sim_latency_ms_bucket{le="+Inf"} 3' in lines
        assert "repro_sim_latency_ms_count 3" in lines

    def test_unset_gauge_skipped(self):
        reg = MetricsRegistry()
        reg.gauge("sim.idle")  # declared, never set
        assert "sim_idle" not in openmetrics_text(reg)

    def test_name_sanitization(self):
        assert _metric_name("shard.0.solve_s", "repro") == "repro_shard_0_solve_s"
        assert _metric_name("weird-name!", "") == "weird_name_"
        # a leading digit without prefix must not produce an invalid name
        assert _metric_name("0bad", "")[0] not in "0123456789"

    def test_export_to_file(self, tmp_path):
        path = tmp_path / "om.txt"
        export_openmetrics(_registry(), str(path))
        assert path.read_text().rstrip().endswith("# EOF")


class TestMetricsStream:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "metrics.jsonl")
        with MetricsStreamWriter(path) as w:
            w.registry_snapshot(1.0, _registry())
            w.windowed_snapshot(2.0, {"window_s": 1.0, "tasks": {}})
            w.slo_report(3.0, {"ok": True, "tasks": {}})
        events = read_metrics_stream(path)
        assert [e["kind"] for e in events] == ["registry", "windows", "slo"]
        assert [e["t_s"] for e in events] == [1.0, 2.0, 3.0]
        assert events[0]["metrics"]["sim.requests"]["value"] == 42
        assert events[2]["slo"]["ok"] is True

    def test_write_after_close_raises(self, tmp_path):
        w = MetricsStreamWriter(str(tmp_path / "m.jsonl"))
        w.close()
        with pytest.raises(ValueError, match="already closed"):
            w.write("registry", 0.0, {})
        w.close()  # idempotent


class TestSparkline:
    def test_scale_and_missing(self):
        s = sparkline([0.0, None, 1.0])
        assert len(s) == 3
        assert s[1] == "·"
        assert s[2] == "█"  # the max maps to the top block

    def test_tail_truncation(self):
        assert len(sparkline([1.0] * 100, width=10)) == 10

    def test_all_zero(self):
        assert set(sparkline([0.0, 0.0])) == {"▁"}


class TestDashboard:
    def test_sections_render(self):
        reg = MetricsRegistry()
        for s in (0, 1):
            reg.gauge(f"shard.{s}.tasks").set(12.0)
            reg.gauge(f"shard.{s}.violation_rate").set(0.25 * s)
            reg.gauge(f"shard.{s}.drifted").set(float(s))
        reg.gauge("sim.queue_depth.edge0").set(4.0)
        windows = {
            "window_s": 1.0,
            "tasks": {"t0": {"counts": [5, 5], "miss_rate": [0.0, None]}},
        }
        slo = {
            "ok": False,
            "tasks": {
                "t0": {
                    "target": 0.99,
                    "achieved": 0.95,
                    "budget_spent": 5.0,
                    "status": "PAGE",
                    "alerts": [{"window": 1}],
                }
            },
        }
        frame = render_dashboard(
            5.0, windows=windows, slo=slo, registry=reg.snapshot()
        )
        assert "SLO: VIOLATED" in frame
        assert "PAGE" in frame
        assert "per-shard health:" in frame
        assert "miss-rate per 1s window" in frame
        assert "queue depth" in frame
        assert "t=5.0s" in frame

    def test_empty_frame(self):
        frame = render_dashboard(0.0)
        assert "repro monitor" in frame
        assert not math.isnan(0.0) and "shard" not in frame
