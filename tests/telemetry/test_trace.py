"""Span tracer: nesting, disabled fast path, exporters, deterministic merge."""

import json
import threading

from repro.telemetry.trace import (
    NULL_SPAN,
    Tracer,
    export_jsonl,
    export_perfetto,
    get_tracer,
    phase_breakdown,
    set_tracer,
    traced,
)


class TestNesting:
    def test_parent_child_integrity(self):
        tracer = Tracer(enabled=True)
        with tracer.span("solve") as root:
            with tracer.span("solve.candidates") as a:
                with tracer.span("inner") as b:
                    pass
            with tracer.span("solve.refine") as c:
                pass
        spans = tracer.drain()
        # drain orders by (stream, seq): span-open order, not close order
        assert [s.name for s in spans] == [
            "solve", "solve.candidates", "inner", "solve.refine",
        ]
        by_name = {s.name: s for s in spans}
        assert by_name["solve"].parent_id is None
        assert by_name["solve.candidates"].parent_id == by_name["solve"].span_id
        assert by_name["inner"].parent_id == by_name["solve.candidates"].span_id
        assert by_name["solve.refine"].parent_id == by_name["solve"].span_id
        assert root.span_id == by_name["solve"].span_id
        assert a.span_id != b.span_id != c.span_id

    def test_spans_record_wall_clock_and_attrs(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work", {"n": 3}) as sp:
            sp.set("result", "ok")
        (span,) = tracer.drain()
        assert span.end_s >= span.start_s
        assert span.duration_s >= 0.0
        assert span.attrs == {"n": 3, "result": "ok"}
        d = span.as_dict()
        assert d["name"] == "work" and d["attrs"]["result"] == "ok"

    def test_drain_clears_buffers(self):
        tracer = Tracer(enabled=True)
        with tracer.span("once"):
            pass
        assert len(tracer.drain()) == 1
        assert tracer.drain() == []


class TestDisabledFastPath:
    def test_span_returns_singleton(self):
        tracer = Tracer(enabled=False)
        s1 = tracer.span("hot", {"ignored": True})
        s2 = tracer.span("hot2")
        assert s1 is NULL_SPAN and s2 is NULL_SPAN  # zero allocation per call
        with s1 as sp:
            sp.set("key", "value")  # absorbed silently
        assert tracer.drain() == []

    def test_stream_returns_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.stream(3) is NULL_SPAN

    def test_traced_decorator_passthrough(self):
        calls = []

        @traced("decorated.fn")
        def fn(x):
            calls.append(x)
            return x * 2

        old = get_tracer()
        try:
            tracer = set_tracer(Tracer(enabled=False))
            assert fn(21) == 42
            assert tracer.drain() == []
            tracer.enable()
            assert fn(1) == 2
            (span,) = tracer.drain()
            assert span.name == "decorated.fn"
        finally:
            set_tracer(old)
        assert calls == [21, 1]


class TestExporters:
    def _spans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("solve", {"tasks": 2}):
            with tracer.span("solve.candidates"):
                pass
        return tracer.drain()

    def test_perfetto_round_trips_json_loads(self, tmp_path):
        path = str(tmp_path / "trace.json")
        export_perfetto(self._spans(), path)
        payload = json.loads(open(path).read())
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert names == {"solve", "solve.candidates"}
        for e in events:
            if e["ph"] == "X":
                assert e["ts"] >= 0 and e["dur"] >= 0

    def test_perfetto_extra_events_appended(self, tmp_path):
        path = str(tmp_path / "trace.json")
        extra = [{"ph": "i", "pid": 2, "tid": 0, "name": "enqueue", "ts": 1.0}]
        export_perfetto(self._spans(), path, extra_events=extra)
        payload = json.loads(open(path).read())
        assert {"enqueue"} <= {e["name"] for e in payload["traceEvents"]}

    def test_jsonl_one_object_per_span(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        spans = self._spans()
        export_jsonl(spans, path)
        lines = open(path).read().splitlines()
        assert len(lines) == len(spans)
        objs = [json.loads(ln) for ln in lines]
        assert {o["name"] for o in objs} == {"solve", "solve.candidates"}


class TestStreamMerge:
    def _record(self, tracer, parallel):
        """Record one root + three per-stream children, serially or threaded."""
        with tracer.span("solve") as root:
            def work(r):
                with tracer.stream(r + 1, parent=root.span_id):
                    with tracer.span("solve.descend", {"restart": r}):
                        pass

            if parallel:
                threads = [threading.Thread(target=work, args=(r,)) for r in range(3)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
            else:
                for r in range(3):
                    work(r)
        return tracer.drain()

    def test_serial_and_parallel_merge_identically(self):
        serial = self._record(Tracer(enabled=True), parallel=False)
        threaded = self._record(Tracer(enabled=True), parallel=True)
        key = lambda spans: [(s.name, s.span_id, s.parent_id, s.attrs) for s in spans]
        assert key(serial) == key(threaded)

    def test_cross_thread_reparenting(self):
        spans = self._record(Tracer(enabled=True), parallel=True)
        root = next(s for s in spans if s.name == "solve")
        descends = [s for s in spans if s.name == "solve.descend"]
        assert len(descends) == 3
        assert all(s.parent_id == root.span_id for s in descends)
        assert sorted(s.stream for s in descends) == [1, 2, 3]


class TestPhaseBreakdown:
    def test_children_aggregate_with_untraced_row(self):
        tracer = Tracer(enabled=True)
        with tracer.span("solve"):
            with tracer.span("solve.candidates"):
                pass
            with tracer.span("solve.descend"):
                pass
            with tracer.span("solve.descend"):
                pass
        rows = phase_breakdown(tracer.drain(), root="solve")
        by_phase = {name: (count, frac) for name, count, _, frac in rows}
        assert by_phase["solve.descend"][0] == 2
        assert by_phase["solve.candidates"][0] == 1
        assert "(untraced)" in by_phase
        # child time + untraced covers the whole root
        assert abs(sum(frac for _, _, _, frac in rows) - 1.0) < 1e-6

    def test_no_roots_is_empty(self):
        tracer = Tracer(enabled=True)
        with tracer.span("other"):
            pass
        assert phase_breakdown(tracer.drain(), root="solve") == []
