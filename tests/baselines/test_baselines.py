"""Baseline strategies: structural guarantees per strategy."""

import numpy as np
import pytest

from repro.baselines import (
    AllocationOnly,
    BranchyLocal,
    CloudOnly,
    DeviceOnly,
    EdgeOnly,
    Edgent,
    GreedyJoint,
    Neurosurgeon,
    RandomStrategy,
    RoundRobinStrategy,
    equal_share_allocation,
)
from repro.core.joint import JointOptimizer
from repro.core.plan import TaskSpec

ALL_STRATEGIES = [
    DeviceOnly,
    BranchyLocal,
    EdgeOnly,
    CloudOnly,
    Neurosurgeon,
    Edgent,
    AllocationOnly,
    GreedyJoint,
    RandomStrategy,
    RoundRobinStrategy,
]


@pytest.fixture(scope="module")
def plans(small_cluster, small_tasks, small_candidates):
    return {
        S.name: S().solve(small_tasks, small_cluster, candidates=small_candidates, seed=0)
        for S in ALL_STRATEGIES
    }


@pytest.mark.parametrize("S", ALL_STRATEGIES, ids=lambda s: s.name)
class TestCommonContract:
    def test_complete_plan(self, S, plans, small_tasks):
        plan = plans[S.name]
        for t in small_tasks:
            assert t.name in plan.features
            assert t.name in plan.latencies

    def test_accuracy_floor_respected(self, S, plans, small_tasks):
        plan = plans[S.name]
        for t in small_tasks:
            assert plan.features[t.name].accuracy >= t.accuracy_floor - 1e-9

    def test_shares_valid(self, S, plans, small_tasks):
        plan = plans[S.name]
        for t in small_tasks:
            assert 0 < plan.compute_shares[t.name] <= 1 + 1e-9
            assert 0 < plan.bandwidth_shares[t.name] <= 1 + 1e-9

    def test_local_plans_have_no_server(self, S, plans, small_tasks):
        plan = plans[S.name]
        for t in small_tasks:
            if plan.features[t.name].is_local_only:
                assert plan.assignment[t.name] is None


class TestStructuralRestrictions:
    def test_device_only_is_local_full_depth(self, plans, small_tasks):
        plan = plans["device_only"]
        for t in small_tasks:
            f = plan.features[t.name]
            assert f.is_local_only
            assert len(f.plan.kept_exits) == 1
            assert plan.assignment[t.name] is None

    def test_branchy_local_stays_local(self, plans, small_tasks):
        plan = plans["branchy_local"]
        for t in small_tasks:
            assert plan.features[t.name].is_local_only

    def test_branchy_no_slower_than_device_only(self, plans):
        assert (
            plans["branchy_local"].objective_value
            <= plans["device_only"].objective_value + 1e-12
        )

    def test_edge_only_full_offload_no_exits(self, plans, small_tasks):
        plan = plans["edge_only"]
        for t in small_tasks:
            f = plan.features[t.name]
            assert f.plan.partition_cut == 0
            assert len(f.plan.kept_exits) == 1
            assert plan.assignment[t.name] is not None

    def test_cloud_only_single_server(self, plans, small_tasks, small_cluster):
        plan = plans["cloud_only"]
        targets = {plan.assignment[t.name] for t in small_tasks}
        assert len(targets) == 1
        (s,) = targets
        assert small_cluster.servers[s].peak_flops == max(
            srv.peak_flops for srv in small_cluster.servers
        )

    def test_neurosurgeon_no_exits(self, plans, small_tasks):
        plan = plans["neurosurgeon"]
        for t in small_tasks:
            assert len(plan.features[t.name].plan.kept_exits) == 1

    def test_allocation_only_no_exits(self, plans, small_tasks):
        plan = plans["allocation_only"]
        for t in small_tasks:
            assert len(plan.features[t.name].plan.kept_exits) == 1

    def test_random_is_seed_deterministic(self, small_cluster, small_tasks, small_candidates):
        a = RandomStrategy().solve(small_tasks, small_cluster, candidates=small_candidates, seed=9)
        b = RandomStrategy().solve(small_tasks, small_cluster, candidates=small_candidates, seed=9)
        assert a.assignment == b.assignment


class TestOrdering:
    def test_joint_dominates_all_baselines(
        self, plans, small_cluster, small_tasks, small_candidates
    ):
        joint = JointOptimizer(small_cluster).solve(
            small_tasks, candidates=small_candidates, seed=0
        )
        for name, plan in plans.items():
            assert joint.plan.objective_value <= plan.objective_value + 1e-9, name

    def test_edgent_no_slower_than_round_robin(self, plans):
        # edgent optimizes per task at full share; round_robin at equal share:
        # not strictly comparable, but both beat raw edge_only here
        assert plans["edgent"].objective_value <= plans["edge_only"].objective_value + 1e-9
        assert plans["round_robin"].objective_value <= plans["edge_only"].objective_value + 1e-9


class TestEqualShares:
    def test_counts(self, small_tasks):
        alloc = equal_share_allocation([0, 0], small_tasks)
        np.testing.assert_allclose(alloc.compute_shares, 0.5)

    def test_separate_links_not_shared(self, small_tasks):
        # two tasks on different devices: each has its own access link
        alloc = equal_share_allocation([0, 0], small_tasks)
        np.testing.assert_allclose(alloc.bandwidth_shares, 1.0)

    def test_local_tasks_full_share(self, small_tasks):
        alloc = equal_share_allocation([None, None], small_tasks)
        np.testing.assert_allclose(alloc.compute_shares, 1.0)
