"""Transfer-time arithmetic."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.network.link import Link
from repro.network.transfer import round_trip_time, transfer_time, transfer_time_vec
from repro.units import mbps

LINK = Link(mbps(8), rtt_s=10e-3)  # 1 MB/s for easy math


class TestTransferTime:
    def test_serialization_plus_propagation(self):
        # 1 MB at 1 MB/s + 5ms propagation
        assert transfer_time(1e6, LINK) == pytest.approx(1.0 + 0.005)

    def test_zero_bytes_free(self):
        assert transfer_time(0, LINK) == 0.0

    def test_share_scales(self):
        t_half = transfer_time(1e6, LINK, share=0.5)
        assert t_half == pytest.approx(2.0 + 0.005)

    def test_negative_bytes_raises(self):
        with pytest.raises(ConfigError):
            transfer_time(-1, LINK)

    def test_invalid_share(self):
        with pytest.raises(ConfigError):
            transfer_time(1e6, LINK, share=0.0)

    def test_vectorized_matches_scalar(self):
        sizes = np.array([0.0, 1e3, 1e6])
        vec = transfer_time_vec(sizes, LINK)
        for s, v in zip(sizes, vec):
            assert v == pytest.approx(transfer_time(float(s), LINK))

    def test_round_trip(self):
        rt = round_trip_time(1e6, 1e3, LINK)
        assert rt == pytest.approx(transfer_time(1e6, LINK) + transfer_time(1e3, LINK))
