"""Star topology."""

import pytest

from repro.errors import ConfigError
from repro.network.link import Link
from repro.network.topology import StarTopology
from repro.units import mbps

L = Link(mbps(10), rtt_s=1e-3)


class TestStarTopology:
    def test_uniform_builds_all_pairs(self):
        t = StarTopology.uniform(["d0", "d1"], ["s0", "s1"], L)
        assert len(t.links) == 4

    def test_link_lookup(self):
        t = StarTopology.uniform(["d0"], ["s0"], L)
        assert t.link("d0", "s0") is L

    def test_unknown_pair_raises(self):
        t = StarTopology.uniform(["d0"], ["s0"], L)
        with pytest.raises(ConfigError):
            t.link("d0", "s1")

    def test_missing_links_raise(self):
        with pytest.raises(ConfigError):
            StarTopology(["d0"], ["s0"], {})

    def test_duplicate_names_raise(self):
        with pytest.raises(ConfigError):
            StarTopology.uniform(["d0", "d0"], ["s0"], L)

    def test_per_server_scale(self):
        t = StarTopology.uniform(["d0"], ["s0", "s1"], L, per_server_scale={"s1": 2.0})
        assert t.link("d0", "s1").bandwidth_bps == pytest.approx(2 * L.bandwidth_bps)

    def test_with_link_replaces_one(self):
        t = StarTopology.uniform(["d0"], ["s0", "s1"], L)
        t2 = t.with_link("d0", "s0", L.scaled(0.1))
        assert t2.link("d0", "s0").bandwidth_bps == pytest.approx(L.bandwidth_bps / 10)
        assert t2.link("d0", "s1").bandwidth_bps == pytest.approx(L.bandwidth_bps)

    def test_scale_all(self):
        t = StarTopology.uniform(["d0"], ["s0"], L).scale_all(3.0)
        assert t.link("d0", "s0").bandwidth_bps == pytest.approx(3 * L.bandwidth_bps)
