"""Time-varying bandwidth models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.network.wireless import BandwidthTrace, GaussMarkovBandwidth, MarkovBandwidth
from repro.units import mbps


class TestBandwidthTrace:
    def test_lookup(self):
        tr = BandwidthTrace(times=np.array([0.0, 10.0]), values=np.array([100.0, 50.0]))
        assert tr.bandwidth(5.0) == 100.0
        assert tr.bandwidth(10.0) == 50.0
        assert tr.bandwidth(1e9) == 50.0

    def test_must_start_at_zero(self):
        with pytest.raises(ConfigError):
            BandwidthTrace(times=np.array([1.0]), values=np.array([10.0]))

    def test_strictly_increasing_times(self):
        with pytest.raises(ConfigError):
            BandwidthTrace(times=np.array([0.0, 0.0]), values=np.array([1.0, 2.0]))

    def test_positive_bandwidths(self):
        with pytest.raises(ConfigError):
            BandwidthTrace(times=np.array([0.0]), values=np.array([0.0]))

    def test_negative_time_query(self):
        tr = BandwidthTrace(times=np.array([0.0]), values=np.array([1.0]))
        with pytest.raises(ConfigError):
            tr.bandwidth(-1.0)

    def test_mean_time_weighted(self):
        tr = BandwidthTrace(
            times=np.array([0.0, 1.0, 3.0]), values=np.array([10.0, 20.0, 99.0])
        )
        # covered span [0,3): 1s at 10 + 2s at 20
        assert tr.mean() == pytest.approx((10 + 2 * 20) / 3)

    def test_change_points(self):
        tr = BandwidthTrace(times=np.array([0.0, 2.0, 5.0]), values=np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(tr.change_points(), [2.0, 5.0])


class TestGaussMarkov:
    def test_generates_positive_trace(self):
        gm = GaussMarkovBandwidth(mean_bps=mbps(40), sigma_bps=mbps(20))
        tr = gm.generate(60.0, seed=1)
        assert np.all(tr.values > 0)
        assert tr.times[0] == 0.0

    def test_respects_floor(self):
        gm = GaussMarkovBandwidth(mean_bps=mbps(2), sigma_bps=mbps(50), floor_bps=mbps(1))
        tr = gm.generate(120.0, seed=2)
        assert tr.values.min() >= mbps(1) - 1e-9

    def test_respects_cap(self):
        gm = GaussMarkovBandwidth(
            mean_bps=mbps(40), sigma_bps=mbps(50), cap_bps=mbps(45)
        )
        tr = gm.generate(120.0, seed=3)
        assert tr.values.max() <= mbps(45) + 1e-9

    def test_deterministic_given_seed(self):
        gm = GaussMarkovBandwidth(mean_bps=mbps(40), sigma_bps=mbps(10))
        a = gm.generate(30.0, seed=7)
        b = gm.generate(30.0, seed=7)
        np.testing.assert_array_equal(a.values, b.values)

    def test_mean_reversion(self):
        gm = GaussMarkovBandwidth(mean_bps=mbps(40), sigma_bps=mbps(5), memory=0.5)
        tr = gm.generate(2000.0, seed=4)
        assert abs(tr.values.mean() - mbps(40)) < mbps(4)

    def test_invalid_memory(self):
        with pytest.raises(ConfigError):
            GaussMarkovBandwidth(mean_bps=1e6, sigma_bps=1e5, memory=1.0)

    def test_invalid_horizon(self):
        gm = GaussMarkovBandwidth(mean_bps=1e6, sigma_bps=1e5)
        with pytest.raises(ConfigError):
            gm.generate(0.0)


class TestMarkovBandwidth:
    def test_values_from_state_set(self):
        mk = MarkovBandwidth(state_bps=(100.0, 10.0), mean_holding_s=(5.0, 5.0))
        tr = mk.generate(200.0, seed=5)
        assert set(np.unique(tr.values)) <= {100.0, 10.0}

    def test_state_changes_occur(self):
        mk = MarkovBandwidth(state_bps=(100.0, 10.0), mean_holding_s=(1.0, 1.0))
        tr = mk.generate(100.0, seed=6)
        assert len(tr.change_points()) > 5

    def test_mismatched_lengths(self):
        with pytest.raises(ConfigError):
            MarkovBandwidth(state_bps=(1.0, 2.0), mean_holding_s=(1.0,))

    def test_single_state_never_changes(self):
        mk = MarkovBandwidth(state_bps=(42.0,), mean_holding_s=(1.0,))
        tr = mk.generate(10.0, seed=7)
        assert np.all(tr.values == 42.0)
