"""Link model."""

import pytest

from repro.errors import ConfigError
from repro.network.link import Link
from repro.units import mbps


class TestLink:
    def test_valid(self):
        l = Link(mbps(10), rtt_s=5e-3, name="l")
        assert l.bandwidth_bps == pytest.approx(1.25e6)

    def test_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            Link(0.0)

    def test_negative_rtt(self):
        with pytest.raises(ConfigError):
            Link(mbps(10), rtt_s=-1.0)

    def test_scaled(self):
        l = Link(mbps(10), rtt_s=5e-3)
        s = l.scaled(0.5)
        assert s.bandwidth_bps == pytest.approx(l.bandwidth_bps / 2)
        assert s.rtt_s == l.rtt_s

    def test_scaled_invalid(self):
        with pytest.raises(ConfigError):
            Link(mbps(10)).scaled(0.0)

    def test_with_bandwidth(self):
        l = Link(mbps(10), rtt_s=5e-3)
        assert l.with_bandwidth(123.0).bandwidth_bps == 123.0
