"""Hypothesis properties of the sharded control plane.

Two invariants the coordinator's correctness rests on:

- per-shard :class:`PerfCounters` merge is order-independent (serial and
  parallel shard fan-out must report byte-identical counters regardless of
  completion order);
- a shard plan is a *partition*: every server in exactly one shard, every
  task homed to exactly one shard — and migration re-homing preserves that.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sharding import (
    ShardPlan,
    partition_servers,
    partition_servers_nested,
)
from repro.errors import ConfigError
from repro.profiling.counters import PerfCounters

_COUNTER_FIELDS = [f.name for f in dataclasses.fields(PerfCounters)]


@st.composite
def counters(draw):
    values = {
        name: (
            draw(st.floats(0.0, 100.0, allow_nan=False))
            if name.endswith("_s")  # wall-clock timer fields are floats
            else draw(st.integers(0, 10_000))
        )
        for name in _COUNTER_FIELDS
    }
    return PerfCounters(**values)


@given(
    per_shard=st.lists(counters(), min_size=1, max_size=8),
    seed=st.randoms(use_true_random=False),
)
def test_counter_merge_order_independent(per_shard, seed):
    keyed = dict(enumerate(per_shard))
    merged = PerfCounters.merged(keyed)
    shuffled_keys = list(keyed)
    seed.shuffle(shuffled_keys)
    remerged = PerfCounters.merged({k: keyed[k] for k in shuffled_keys})
    assert merged == remerged


@given(
    per_shard=st.lists(counters(), min_size=1, max_size=6),
)
def test_counter_merge_equals_field_sums(per_shard):
    merged = PerfCounters.merged(dict(enumerate(per_shard)))
    for name in _COUNTER_FIELDS:
        assert getattr(merged, name) == pytest.approx(
            sum(getattr(c, name) for c in per_shard)
        )


@given(
    num_servers=st.integers(1, 64),
    shards=st.integers(1, 64),
    shard_by=st.sampled_from(["contiguous", "interleave"]),
)
def test_partition_covers_every_server_once(num_servers, shards, shard_by):
    if shards > num_servers:
        with pytest.raises(ConfigError):
            partition_servers(num_servers, shards, shard_by)
        return
    parts = partition_servers(num_servers, shards, shard_by)
    flat = [s for shard in parts for s in shard]
    assert sorted(flat) == list(range(num_servers))
    assert all(shard for shard in parts)


@given(
    num_servers=st.integers(1, 64),
    regions=st.integers(1, 8),
    racks=st.integers(1, 8),
    shard_by=st.sampled_from(["contiguous", "interleave"]),
)
def test_nested_partition_partitions_both_levels(
    num_servers, regions, racks, shard_by
):
    """Regions partition the server set; racks partition each region; the
    flattened racks are exactly the flat partition the outer level made —
    what the coordinator's nested mode (regions → racks) relies on."""
    if regions > num_servers:
        with pytest.raises(ConfigError):
            partition_servers_nested(num_servers, regions, racks, shard_by)
        return
    nested = partition_servers_nested(num_servers, regions, racks, shard_by)
    outer = partition_servers(num_servers, regions, shard_by)
    assert len(nested) == len(outer) == regions
    for region_racks, region in zip(nested, outer):
        # racks are non-empty, disjoint, and cover exactly the region
        assert all(rack for rack in region_racks)
        assert len(region_racks) == min(racks, len(region))
        flat = [s for rack in region_racks for s in rack]
        assert sorted(flat) == sorted(region)
        assert len(set(flat)) == len(flat)
    all_servers = [s for rr in nested for rack in rr for s in rack]
    assert sorted(all_servers) == list(range(num_servers))


@given(num_servers=st.integers(1, 32), regions=st.integers(1, 4))
def test_nested_partition_rejects_bad_racks(num_servers, regions):
    if regions > num_servers:
        return
    with pytest.raises(ConfigError):
        partition_servers_nested(num_servers, regions, 0)


@settings(max_examples=50)
@given(
    num_servers=st.integers(2, 32),
    shards=st.integers(2, 8),
    num_tasks=st.integers(1, 64),
    data=st.data(),
)
def test_migration_rehoming_keeps_partition(num_servers, shards, num_tasks, data):
    """Any sequence of migration re-homings keeps every task in exactly one
    (valid) shard — the coordinator's ``with_task_shard`` path."""
    if shards > num_servers:
        return
    server_shards = partition_servers(num_servers, shards, "interleave")
    homing = data.draw(
        st.lists(
            st.integers(0, shards - 1), min_size=num_tasks, max_size=num_tasks
        )
    )
    plan = ShardPlan(server_shards, tuple(homing))
    moves = data.draw(
        st.lists(
            st.tuples(
                st.integers(0, num_tasks - 1), st.integers(0, shards - 1)
            ),
            max_size=16,
        )
    )
    task_shard = list(plan.task_shard)
    for task, target in moves:
        task_shard[task] = target
    rehomed = plan.with_task_shard(task_shard)
    # every task homed to exactly one existing shard...
    assert len(rehomed.task_shard) == num_tasks
    assert all(0 <= s < shards for s in rehomed.task_shard)
    # ...and tasks_of() tiles the task set exactly once
    seen = sorted(i for s in range(shards) for i in rehomed.tasks_of(s))
    assert seen == list(range(num_tasks))
    # the server partition is untouched by re-homing
    assert rehomed.server_shards == plan.server_shards
