"""Hypothesis property tests for the extension features."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.plan import SurgeryPlan
from repro.core.surgery import evaluate_plan, refine_thresholds
from repro.models.quantization import ALL_LEVELS, quantization_level
from repro.workloads.traces import DiurnalPattern, windowed_rates

# --- quantization scaling laws --------------------------------------------------


@settings(max_examples=20, deadline=None)
@given(
    cut_frac=st.floats(0.0, 1.0),
    theta=st.sampled_from([0.5, 0.7, 0.9]),
    level=st.sampled_from(ALL_LEVELS),
)
def test_quantization_scales_every_cost_consistently(cut_frac, theta, level, request):
    """For ANY plan, quantized features are the fp32 features scaled by the
    level's constants — no plan-dependent leakage."""
    model = request.getfixturevalue("me_resnet18")
    n_cuts = len(model.backbone.cut_points)
    cut = int(round(cut_frac * (n_cuts - 1)))
    base = SurgeryPlan(
        kept_exits=(1, model.num_exits - 1), thresholds=(theta, 0.0), partition_cut=cut
    )
    quant = SurgeryPlan(
        kept_exits=base.kept_exits,
        thresholds=base.thresholds,
        partition_cut=cut,
        quantization=level,
    )
    f0 = evaluate_plan(model, base)
    fq = evaluate_plan(model, quant)
    lvl = quantization_level(level)
    assert fq.dev_flops == pytest.approx(f0.dev_flops / lvl.compute_speedup, rel=1e-9)
    assert fq.srv_flops == pytest.approx(f0.srv_flops / lvl.compute_speedup, rel=1e-9)
    assert fq.wire_bytes == pytest.approx(f0.wire_bytes * lvl.wire_scale, rel=1e-9)
    assert fq.p_offload == pytest.approx(f0.p_offload, abs=1e-12)
    assert fq.accuracy <= f0.accuracy + 1e-12


# --- refinement safety ------------------------------------------------------------


@settings(max_examples=12, deadline=None)
@given(
    theta=st.sampled_from([0.5, 0.65, 0.8, 0.95]),
    floor=st.floats(0.45, 0.62),
    x=st.floats(0.1, 1.0),
)
def test_refinement_never_worse_never_infeasible(theta, floor, x, request):
    model = request.getfixturevalue("me_resnet18")
    pi4 = request.getfixturevalue("pi4")
    gpu = request.getfixturevalue("edge_gpu")
    lm = request.getfixturevalue("latency_model")
    from repro.core.surgery import plan_latency
    from repro.network.link import Link
    from repro.units import mbps

    link = Link(mbps(30), rtt_s=5e-3)
    plan = SurgeryPlan(
        kept_exits=(1, 3, model.num_exits - 1),
        thresholds=(theta, theta, 0.0),
        partition_cut=0,
    )
    f0 = evaluate_plan(model, plan)
    if f0.accuracy < floor:
        return  # input infeasible; nothing to check
    lat0 = float(
        plan_latency(
            f0.dev_flops, f0.srv_flops, f0.wire_bytes, f0.p_offload, pi4, lm,
            server=gpu, link=link, compute_share=x,
        )
    )
    refined_plan, fr = refine_thresholds(
        model, plan, pi4, lm, floor, server=gpu, link=link, compute_share=x
    )
    lat1 = float(
        plan_latency(
            fr.dev_flops, fr.srv_flops, fr.wire_bytes, fr.p_offload, pi4, lm,
            server=gpu, link=link, compute_share=x,
        )
    )
    assert lat1 <= lat0 + 1e-12
    assert fr.accuracy >= floor - 1e-12
    # structure is preserved: only thresholds may change
    assert refined_plan.kept_exits == plan.kept_exits
    assert refined_plan.partition_cut == plan.partition_cut


# --- diurnal workload ---------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    base=st.floats(1.0, 30.0),
    amp=st.floats(0.0, 0.95),
    seed=st.integers(0, 1000),
)
def test_diurnal_rate_envelope_bounds_samples(base, amp, seed):
    p = DiurnalPattern(base_rate=base, amplitude=amp, period_s=60.0)
    arr = p.generate(240.0, seed=seed)
    assert np.all(np.diff(arr) >= 0)
    if arr.size:
        assert arr.min() >= 0 and arr.max() < 240.0
    # long-run average within sampling noise of the base rate (full periods)
    emp = arr.size / 240.0
    sigma = np.sqrt(base / 240.0)
    assert abs(emp - base) < 6 * sigma + 0.5


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(0, 200),
    window=st.floats(0.5, 10.0),
    seed=st.integers(0, 100),
)
def test_windowed_rates_conserve_counts(n, window, seed):
    rng = np.random.default_rng(seed)
    horizon = 30.0
    arrivals = np.sort(rng.uniform(0, horizon, size=n))
    arrivals = np.unique(arrivals)
    starts, rates = windowed_rates(arrivals, horizon, window)
    widths = np.minimum(starts + window, horizon) - starts
    assert int(round(float(np.sum(rates * widths)))) == arrivals.size


# --- queue-aware candidate ranking ---------------------------------------------------


@settings(max_examples=10, deadline=None)
@given(lam=st.floats(0.1, 20.0))
def test_candidate_latencies_monotone_in_arrival_rate(lam, request):
    """More load can never make any candidate look faster."""
    cs = request.getfixturevalue("e2e_pruned_ext")
    pi4 = request.getfixturevalue("pi4")
    gpu = request.getfixturevalue("edge_gpu")
    lm = request.getfixturevalue("latency_model")
    from repro.network.link import Link
    from repro.units import mbps

    link = Link(mbps(30), rtt_s=5e-3)
    lo = cs.latencies(pi4, lm, server=gpu, link=link, arrival_rate=lam)
    hi = cs.latencies(pi4, lm, server=gpu, link=link, arrival_rate=lam * 1.5)
    assert np.all(hi >= lo - 1e-9)


@pytest.fixture(scope="module")
def e2e_pruned_ext(me_resnet18):
    from repro.core.candidates import CandidateSet
    from repro.core.plan import TaskSpec
    from repro.core.surgery import enumerate_features

    task = TaskSpec("t", me_resnet18, "d", accuracy_floor=0.4)
    return CandidateSet(
        task, enumerate_features(me_resnet18, threshold_grid=(0.8,))
    ).pruned()
