"""Hypothesis property tests on core invariants.

These pin the mathematical contracts that the optimizer's correctness rests
on: shape/FLOPs algebra, exit-distribution normalization and monotonicity,
sqrt-share optimality, M/G/1 sanity, dominance-prune safety, and the
engine's causal ordering.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import sqrt_shares
from repro.core.queueing import mg1_wait, mm1_wait
from repro.models.accuracy import AccuracyModel
from repro.models.exits import DifficultyDistribution, exit_probabilities
from repro.models.graph import ModelGraph
from repro.models.layers import (
    Activation,
    Conv2D,
    Dense,
    Flatten,
    GlobalAvgPool,
    Input,
    Pool,
    conv_out_hw,
    shape_bytes,
    shape_elements,
)

# --- shape algebra ------------------------------------------------------------


@given(
    c=st.integers(1, 64),
    h=st.integers(3, 64),
    k=st.integers(1, 5),
    stride=st.integers(1, 3),
    out_ch=st.integers(1, 64),
)
def test_conv_shape_and_flops_consistent(c, h, k, stride, out_ch):
    pad = k // 2
    conv = Conv2D("c", out_channels=out_ch, kernel=k, stride=stride, padding=pad)
    out = conv.output_shape((c, h, h))
    assert out[0] == out_ch
    assert out[1] == conv_out_hw(h, k, stride, pad)
    # flops = 2 * k^2 * Cin * elements(out)
    assert conv.flops((c, h, h)) == 2 * k * k * c * shape_elements(out)


@given(shape=st.tuples(st.integers(1, 32), st.integers(1, 32), st.integers(1, 32)))
def test_bytes_are_4x_elements(shape):
    assert shape_bytes(shape) == 4 * shape_elements(shape)


@given(
    channels=st.lists(st.integers(1, 16), min_size=1, max_size=4),
    h=st.integers(4, 16),
)
def test_chain_graph_flops_additive(channels, h):
    """Total FLOPs of a generated chain equals the sum over its layers."""
    layers = [Input("input", shape=(3, h, h))]
    for i, ch in enumerate(channels):
        layers.append(Conv2D(f"conv{i}", out_channels=ch, kernel=3, padding=1))
        layers.append(Activation(f"relu{i}"))
    layers.append(GlobalAvgPool("gap"))
    layers.append(Dense("fc", out_features=4))
    g = ModelGraph.chain("gen", layers)
    assert g.total_flops == sum(g.flops_of(n) for n in g.topological_order)
    # cut head-FLOPs are monotone along the chain
    heads = [c.head_flops for c in g.cut_points]
    assert heads == sorted(heads)
    assert heads[-1] == g.total_flops


# --- exit distributions --------------------------------------------------------

ACC = AccuracyModel()


@given(
    comps=st.lists(st.floats(-1.0, 2.0), min_size=1, max_size=5),
    thr=st.floats(0.05, 0.95),
    alpha=st.floats(0.5, 6.0),
    beta=st.floats(0.5, 6.0),
)
@settings(max_examples=40, deadline=None)
def test_exit_probabilities_normalized(comps, thr, alpha, beta):
    comps = sorted(comps)
    thresholds = [thr] * (len(comps) - 1) + [0.0]
    diff = DifficultyDistribution(alpha=alpha, beta=beta)
    p, acc = exit_probabilities(comps, thresholds, diff, ACC)
    assert p.sum() == pytest.approx(1.0)
    assert np.all(p >= 0)
    assert np.all((acc > 0) & (acc < 1))


@given(
    t_lo=st.floats(0.1, 0.5),
    t_hi=st.floats(0.55, 0.95),
)
@settings(max_examples=25, deadline=None)
def test_raising_threshold_reduces_early_mass(t_lo, t_hi):
    comps = [0.3, 0.7]
    diff = DifficultyDistribution()
    p_lo, _ = exit_probabilities(comps, [t_lo, 0.0], diff, ACC)
    p_hi, _ = exit_probabilities(comps, [t_hi, 0.0], diff, ACC)
    assert p_hi[0] <= p_lo[0] + 1e-12


# --- allocation ----------------------------------------------------------------


@given(
    weights=st.lists(st.floats(1e-6, 1e6), min_size=1, max_size=8),
)
def test_sqrt_shares_feasible_and_optimal(weights):
    a = np.array(weights)
    x = sqrt_shares(a)
    assert x.sum() == pytest.approx(1.0)
    assert np.all(x > 0)
    # Cauchy-Schwarz lower bound is attained: sum(a/x) == (sum sqrt a)^2
    assert float(np.sum(a / x)) == pytest.approx(float(np.sum(np.sqrt(a)) ** 2), rel=1e-9)


@given(
    lam=st.floats(0.01, 10.0),
    s=st.floats(1e-4, 1.0),
    cv2=st.floats(0.0, 5.0),
)
def test_mg1_wait_nonnegative_and_monotone_in_variance(lam, s, cv2):
    es2 = s * s * (1.0 + cv2)
    w = mg1_wait(lam, s, es2)
    assert w >= 0 or w == float("inf")
    w_det = mg1_wait(lam, s, s * s)
    if np.isfinite(w):
        assert w >= w_det - 1e-12


@given(lam=st.floats(0.0, 5.0), mu=st.floats(0.01, 10.0))
def test_mm1_never_negative(lam, mu):
    w = mm1_wait(lam, mu)
    assert w >= 0 or w == float("inf")
    if lam >= mu:
        assert w == float("inf")


# --- dominance pruning -----------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    x=st.floats(0.05, 1.0),
    y=st.floats(0.05, 1.0),
    floor=st.floats(0.5, 0.68),
)
def test_pruning_never_loses_the_optimum(x, y, floor, request):
    """For random shares and accuracy floors, the pruned candidate set
    contains a plan as fast as the best in the full set."""
    full = request.getfixturevalue("e2e_candidates")
    pruned = request.getfixturevalue("e2e_pruned")
    pi4 = request.getfixturevalue("pi4")
    gpu = request.getfixturevalue("edge_gpu")
    lm = request.getfixturevalue("latency_model")
    from repro.network.link import Link
    from repro.units import mbps

    link = Link(mbps(30), rtt_s=5e-3)
    lat_full = full.latencies(pi4, lm, server=gpu, link=link, compute_share=x, bandwidth_share=y)
    lat_pruned = pruned.latencies(pi4, lm, server=gpu, link=link, compute_share=x, bandwidth_share=y)
    ok_full = lat_full[full.accuracy >= floor]
    ok_pruned = lat_pruned[pruned.accuracy >= floor]
    if ok_full.size and ok_pruned.size:
        assert ok_pruned.min() <= ok_full.min() + 1e-9


@pytest.fixture(scope="module")
def e2e_candidates(me_resnet18):
    from repro.core.candidates import CandidateSet
    from repro.core.plan import TaskSpec
    from repro.core.surgery import enumerate_features

    task = TaskSpec("t", me_resnet18, "d", accuracy_floor=0.4)
    return CandidateSet(task, enumerate_features(me_resnet18, threshold_grid=(0.7, 0.9)))


@pytest.fixture(scope="module")
def e2e_pruned(e2e_candidates):
    return e2e_candidates.pruned()


# --- simulator causality ----------------------------------------------------------


@given(
    delays=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=30),
)
def test_engine_fires_in_nondecreasing_time(delays):
    from repro.sim.engine import Simulator

    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    jobs=st.lists(
        st.tuples(st.floats(0.0, 5.0), st.floats(0.0, 100.0)), min_size=1, max_size=20
    )
)
def test_fifo_resource_never_overlaps(jobs):
    from repro.sim.queues import FifoResource

    r = FifoResource("r", rate=10.0)
    jobs = sorted(jobs)  # FIFO requires time-ordered submission
    intervals = []
    for now, amount in jobs:
        start, finish = r.submit(now, amount)
        assert start >= now
        assert finish >= start
        if amount > 0:
            intervals.append((start, finish))
    for (s1, f1), (s2, f2) in zip(intervals, intervals[1:]):
        assert s2 >= f1 - 1e-12  # no two jobs in service simultaneously
