"""Hypothesis property tests for the failure-aware runtime.

The load-bearing invariant: every launched request is accounted for exactly
once — completed, discarded as warmup, lost, or shed — regardless of arrival
process, fault schedule, or recovery policy.
"""

import dataclasses
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joint import JointOptimizer
from repro.faults import (
    FailurePolicy,
    FaultEvent,
    FaultSchedule,
    PlanUpdate,
    sample_fault_schedule,
)
from repro.sim import SimulationConfig, simulate_plan

_PLAN_CACHE = {}


def _plan(request):
    """Solve the small instance once per process (hypothesis re-calls us)."""
    if "plan" not in _PLAN_CACHE:
        cluster = request.getfixturevalue("small_cluster")
        tasks = request.getfixturevalue("small_tasks")
        cands = request.getfixturevalue("small_candidates")
        _PLAN_CACHE["plan"] = JointOptimizer(cluster).solve(
            tasks, candidates=cands, seed=0
        ).plan
    return _PLAN_CACHE["plan"]


def _policies():
    return st.sampled_from([
        None,
        FailurePolicy(),
        FailurePolicy(max_retries=0, failover=False),
        FailurePolicy(max_retries=0, failover=False, degrade_local=False),
        FailurePolicy(stage_timeout_s=0.05, max_retries=3),
    ])


@settings(max_examples=15, deadline=None)
@given(
    arrival=st.sampled_from(["poisson", "deterministic", "mmpp"]),
    seed=st.integers(0, 2**16),
    crash_rate=st.sampled_from([0.0, 4.0, 12.0]),
    loss_prob=st.sampled_from([0.0, 0.3]),
    policy=_policies(),
)
def test_conservation_across_arrivals_faults_policies(
    arrival, seed, crash_rate, loss_prob, policy, request
):
    cluster = request.getfixturevalue("small_cluster")
    tasks = request.getfixturevalue("small_tasks")
    plan = _plan(request)
    horizon = 8.0
    faults = sample_fault_schedule(
        seed,
        horizon_s=horizon,
        servers=[s.name for s in cluster.servers],
        tasks=[t.name for t in tasks],
        crash_rate_per_min=crash_rate,
        mean_down_s=1.5,
        loss_prob=loss_prob,
    )
    cfg = SimulationConfig(
        horizon_s=horizon,
        warmup_s=1.0,
        arrival=arrival,
        seed=seed,
        faults=faults if len(faults) else None,
        failure_policy=policy if len(faults) else None,
    )
    rep = simulate_plan(tasks, plan, cluster, cfg)
    c = rep.counters
    assert c.conserved(), (
        f"requests={c.requests} != records={c.records} + warmup="
        f"{c.discarded_warmup} + lost={c.lost} + shed={c.shed}"
    )
    assert len(rep.records) == c.records


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    crash_s=st.floats(1.0, 5.0),
    down_s=st.floats(0.5, 4.0),
    update_s=st.floats(0.5, 7.5),
)
def test_conservation_with_plan_repair_and_shedding(
    seed, crash_s, down_s, update_s, request
):
    """Shedding a task mid-run still accounts for every launched request."""
    cluster = request.getfixturevalue("small_cluster")
    tasks = request.getfixturevalue("small_tasks")
    plan = _plan(request)
    cfg = SimulationConfig(
        horizon_s=8.0,
        warmup_s=0.0,
        seed=seed,
        faults=FaultSchedule.crash_recover(
            cluster.servers[0].name, crash_s, down_s
        ),
        failure_policy=FailurePolicy(),
    )
    update = PlanUpdate(update_s, plan, shed_tasks=(tasks[0].name,))
    rep = simulate_plan(tasks, plan, cluster, cfg, plan_updates=[update])
    c = rep.counters
    assert c.conserved()
    assert all(
        r.arrival_s < update_s for r in rep.records if r.task_name == tasks[0].name
    )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16), severity=st.floats(0.05, 0.95))
def test_slowdown_never_loses_requests(seed, severity, request):
    """Stragglers delay work; only crashes and losses can drop it."""
    cluster = request.getfixturevalue("small_cluster")
    tasks = request.getfixturevalue("small_tasks")
    plan = _plan(request)
    sched = FaultSchedule(events=(
        FaultEvent("server_slowdown", cluster.servers[0].name, 1.0, 5.0, severity),
        FaultEvent("server_slowdown", cluster.servers[1].name, 2.0, 6.0, severity),
    ))
    cfg = SimulationConfig(horizon_s=8.0, warmup_s=0.0, seed=seed, faults=sched)
    rep = simulate_plan(tasks, plan, cluster, cfg)
    assert rep.counters.lost == 0
    assert rep.counters.shed == 0
    assert rep.counters.conserved()


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**16))
def test_permanent_crash_with_full_ladder_loses_nothing(seed, request):
    """With every rung enabled, a permanent crash degrades but never drops."""
    cluster = request.getfixturevalue("small_cluster")
    tasks = request.getfixturevalue("small_tasks")
    plan = _plan(request)
    sched = FaultSchedule(events=tuple(
        FaultEvent("server_crash", s.name, 2.0, math.inf)
        for s in cluster.servers
    ))
    cfg = SimulationConfig(
        horizon_s=6.0,
        warmup_s=0.0,
        seed=seed,
        faults=sched,
        failure_policy=FailurePolicy(),
    )
    rep = simulate_plan(tasks, plan, cluster, cfg)
    assert rep.counters.lost == 0
    assert rep.counters.conserved()
