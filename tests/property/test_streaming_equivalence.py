"""Hypothesis: the streaming sweep is lossless across its whole knob space.

The unit tests in ``tests/sim/test_streaming.py`` pin specific seeds and
chunk sizes; these properties draw over the cross product —
arrival model × chunk size × seed × shard count — and assert the
streaming-equivalence contract every time:

- chunked streaming with a keep-all reservoir reproduces the one-shot fast
  path's record set bit-for-bit (chunking is an implementation detail, not
  a semantic one);
- record-free streaming summaries agree with record-backed summaries:
  integer-derived scalars exactly, mean latency to float-sum tolerance,
  histogram quantiles within one bin of the ceil-rank order statistic;
- sharded cells merge to conserved counters for any cell count, and the
  merge is invariant to whether cells ran serially or pooled.
"""

import math
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.joint import JointOptimizer
from repro.sim import SimulationConfig, run_cells
from repro.sim.runner import simulate_plan

KEEP_ALL = 10**6


@pytest.fixture(scope="module")
def solved(small_cluster, small_tasks, small_candidates):
    return JointOptimizer(small_cluster).solve(
        small_tasks, candidates=small_candidates, seed=0
    ).plan


def _cfg(seed, arrival, **overrides):
    kw = dict(horizon_s=5.0, warmup_s=0.5, seed=seed, arrival=arrival)
    kw.update(overrides)
    return SimulationConfig(**kw)


def _sorted_records(report):
    return sorted(report.records, key=lambda r: (r.task_name, r.req_id))


arrivals = st.sampled_from(["poisson", "deterministic", "mmpp"])
chunk_sizes = st.one_of(st.integers(1, 128), st.just(10**9))
seeds = st.integers(0, 50)


@settings(max_examples=12, deadline=None)
@given(arrival=arrivals, chunk_size=chunk_sizes, seed=seeds)
def test_chunked_streaming_bit_identical(
    small_cluster, small_tasks, solved, arrival, chunk_size, seed
):
    one_shot = simulate_plan(
        small_tasks, solved, small_cluster, _cfg(seed, arrival)
    )
    streamed = simulate_plan(
        small_tasks, solved, small_cluster,
        _cfg(
            seed, arrival, streaming=True, chunk_size=chunk_size,
            max_records=KEEP_ALL,
        ),
    )
    assert _sorted_records(streamed) == _sorted_records(one_shot)
    assert streamed.counters == one_shot.counters
    assert streamed.utilizations == one_shot.utilizations
    assert streamed.discarded_warmup == one_shot.discarded_warmup


@settings(max_examples=12, deadline=None)
@given(
    arrival=arrivals,
    chunk_size=chunk_sizes,
    seed=seeds,
    q=st.sampled_from([50.0, 95.0, 99.0]),
)
def test_streaming_summary_matches_records(
    small_cluster, small_tasks, solved, arrival, chunk_size, seed, q
):
    record_backed = simulate_plan(
        small_tasks, solved, small_cluster, _cfg(seed, arrival)
    )
    streamed = simulate_plan(
        small_tasks, solved, small_cluster,
        _cfg(seed, arrival, streaming=True, chunk_size=chunk_size),
    )
    assert streamed.counters == record_backed.counters
    assert streamed.miss_rate == record_backed.miss_rate
    assert streamed.accuracy == record_backed.accuracy
    assert streamed.goodput() == record_backed.goodput()
    assert streamed.mean_latency_s == pytest.approx(
        record_backed.mean_latency_s, rel=1e-12
    )
    lat = record_backed.latencies()
    if lat.size:
        rank = math.ceil((lat.size - 1) * q / 100.0)
        exact = float(np.sort(lat)[rank])
        got = streamed.percentile_latency_s(q)
        assert exact <= got <= exact + streamed.stream.bin_s + 1e-12


@settings(max_examples=8, deadline=None)
@given(cells=st.integers(1, 5), seed=seeds)
def test_sharded_cells_conserve_and_commute(
    small_cluster, small_tasks, solved, cells, seed
):
    cfg = _cfg(seed, "poisson", streaming=True)
    serial = run_cells(
        small_tasks, solved, small_cluster, replace(cfg, sim_workers=1), cells
    )
    pooled = run_cells(
        small_tasks, solved, small_cluster,
        replace(cfg, sim_workers=min(cells, 2)), cells,
    )
    assert serial.counters.conserved()
    assert serial.counters == pooled.counters
    assert serial.mean_latency_s == pooled.mean_latency_s
    assert serial.miss_rate == pooled.miss_rate
    assert serial.total_requests == pooled.total_requests
