"""Experiment registry and fast-experiment smoke runs.

Slow simulator-heavy experiments are exercised by the benchmark suite; here
we smoke-run the fast ones with reduced knobs and verify their invariants.
"""

import math

import pytest

from repro.errors import ConfigError
from repro.experiments import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_eighteen_plus_ablations_registered(self):
        assert {f"E{i}" for i in range(1, 19)} <= set(EXPERIMENTS)
        assert {f"A{i}" for i in range(1, 5)} <= set(EXPERIMENTS)

    def test_unknown_id_raises(self):
        with pytest.raises(ConfigError):
            run_experiment("E99")

    def test_case_insensitive(self):
        r = run_experiment(
            "e1", models=("alexnet",), devices=("raspberry_pi4",)
        )
        assert r.exp_id == "E1"


class TestE1:
    def test_profiles_and_boundaries(self):
        r = run_experiment("E1", models=("alexnet",), devices=("raspberry_pi4", "edge_gpu"))
        assert len(r.rows) == 2
        sizes = r.extras["boundaries"]["alexnet"]
        # non-monotone boundary sizes: min interior << input
        assert sizes[1:-1].min() < sizes[0]

    def test_format_renders(self):
        r = run_experiment("E1", models=("alexnet",), devices=("edge_gpu",))
        assert "alexnet" in r.format()


class TestE2:
    def test_shapes(self):
        r = run_experiment(
            "E2", model_name="resnet18", bandwidths_mbps=(1.0, 10.0, 100.0)
        )
        s = r.extras["series"]
        # device-only is bandwidth-independent
        assert len(set(round(v, 9) for v in s["device_only"])) == 1
        # edge improves with bandwidth
        assert s["edge_only"][-1] < s["edge_only"][0]
        # joint dominates at every point
        for i in range(3):
            assert s["joint"][i] <= min(
                s["device_only"][i], s["edge_only"][i], s["neurosurgeon"][i]
            ) + 1e-9


class TestE3:
    def test_latency_monotone_in_floor(self):
        r = run_experiment(
            "E3", models=("resnet18",), floors=(0.55, 0.62, 0.68)
        )
        frontier = r.extras["frontier"]["resnet18"]
        floors = sorted(frontier)
        lats = [frontier[f] for f in floors if math.isfinite(frontier[f])]
        assert all(b >= a - 1e-9 for a, b in zip(lats, lats[1:]))


class TestE7:
    def test_monotone_histories(self):
        r = run_experiment("E7", num_tasks=4)
        hist = [h for h in r.extras["bcd_history"] if math.isfinite(h)]
        assert all(b <= a + 1e-12 for a, b in zip(hist, hist[1:]))
        assert r.extras["bcd_converged"]


class TestE9:
    def test_runs_small(self):
        r = run_experiment("E9", sizes=((4, 2),))
        assert len(r.rows) == 1
        assert r.rows[0][3] < 30.0  # solve time


class TestE17:
    def test_three_arms_on_small_instance(self):
        r = run_experiment("E17", sizes=((48, 6, 3),))
        arms = {row[3] for row in r.rows}
        assert arms == {"centralized", "sharded", "decentralized"}
        # finite objectives in every arm, sharded within the regression band
        for row in r.rows:
            assert math.isfinite(row[5]) and row[5] > 0
        assert r.extras["regression_pct"]["48x6"] <= 5.0
        assert "control plane" in r.title


class TestE16:
    def test_ladder_recovers_what_static_loses(self):
        r = run_experiment("E16", num_tasks=4, horizon_s=8.0)
        by_mode = {row[0]: row for row in r.rows}
        assert set(by_mode) == {"static", "failover", "failover+repair"}
        lost = r.headers.index("lost")
        static_lost = by_mode["static"][lost]
        assert static_lost > 0
        assert by_mode["failover"][lost] == 0
        # the tail columns ride along: p999 >= p99, p99_sat is "k/n"
        p99 = r.headers.index("p99_ms")
        p999 = r.headers.index("p999_ms")
        for row in r.rows:
            assert row[p999] >= row[p99]
        assert by_mode["static"][r.headers.index("p99_sat")].endswith("/4")
        counters = r.extras["counters"]
        assert counters["failover"]["retries"] + counters["failover"]["failovers"] > 0
        assert r.extras["crashed_server"]
        assert "resilience" in r.title


class TestE18:
    def test_calibration_on_reduced_horizon(self):
        r = run_experiment(
            "E18", num_tasks=4, epsilons=(0.05,), load_scales=(0.6, 1.2),
            horizon_s=10.0, warmup_s=1.0,
        )
        assert len(r.rows) == 2
        assert r.extras["calibration_ok"]
        for cell in r.extras["cells"]:
            assert cell["buffered_violation"] <= cell["epsilon"] + 1e-12
            # buffered certification is (weakly) more selective than mean-based
            assert cell["buffered_certified"] <= cell["deterministic_certified"]
        assert "chance-constrained" in r.title
