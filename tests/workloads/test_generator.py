"""Randomized scenario generator."""

import pytest

from repro.errors import ConfigError
from repro.workloads.generator import RandomScenarioConfig, random_scenario


class TestRandomScenario:
    def test_respects_ranges(self):
        cfg = RandomScenarioConfig(num_tasks=(3, 5), num_servers=(2, 3))
        for k in range(5):
            cluster, tasks = random_scenario(seed=k, config=cfg)
            assert 3 <= len(tasks) <= 5
            assert 2 <= cluster.num_servers <= 3

    def test_accuracy_floor_always_attainable(self):
        for k in range(8):
            _, tasks = random_scenario(seed=k)
            for t in tasks:
                assert t.accuracy_floor < t.model.accuracy_model.final_accuracy

    def test_deterministic_given_seed(self):
        c1, t1 = random_scenario(seed=77)
        c2, t2 = random_scenario(seed=77)
        assert [t.deadline_s for t in t1] == [t.deadline_s for t in t2]
        assert [s.peak_flops for s in c1.servers] == [s.peak_flops for s in c2.servers]

    def test_different_seeds_differ(self):
        _, t1 = random_scenario(seed=1)
        _, t2 = random_scenario(seed=2)
        assert [t.deadline_s for t in t1] != [t.deadline_s for t in t2]

    def test_inverted_range_raises(self):
        with pytest.raises(ConfigError):
            RandomScenarioConfig(num_tasks=(5, 3))

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigError):
            RandomScenarioConfig(models=("skynet",))

    def test_solvable_by_joint(self, latency_model):
        from repro.core.joint import JointOptimizer

        cluster, tasks = random_scenario(seed=5)
        res = JointOptimizer(cluster).solve(tasks)
        assert res.plan.objective_value > 0
