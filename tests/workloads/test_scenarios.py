"""Named scenarios and the scenario factory."""

import pytest

from repro.errors import ConfigError
from repro.workloads.scenarios import SCENARIOS, build_scenario, multiexit_model


class TestScenarioCatalog:
    def test_three_named_scenarios(self):
        assert {"smart_city", "industrial", "mobile_ar"} <= set(SCENARIOS)

    def test_templates_reference_known_models(self):
        from repro.models import zoo

        known = set(zoo.available_models())
        for sc in SCENARIOS.values():
            for model_name, *_ in sc.task_templates:
                assert model_name in known


class TestBuildScenario:
    def test_by_name(self):
        cluster, tasks = build_scenario("smart_city", num_tasks=4, seed=0)
        assert len(tasks) == 4
        assert cluster.num_devices == 4

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            build_scenario("atlantis")

    def test_task_template_cycling(self):
        _, tasks = build_scenario("smart_city", num_tasks=5, seed=0)
        # templates repeat every 3 tasks
        assert tasks[0].model.name == tasks[3].model.name

    def test_num_servers_override(self):
        cluster, _ = build_scenario("smart_city", num_tasks=2, num_servers=5, seed=0)
        assert cluster.num_servers == 5

    def test_access_override(self):
        from repro.units import mbps

        cluster, tasks = build_scenario("smart_city", num_tasks=2, access_mbps=7.0, seed=0)
        link = cluster.link(tasks[0].device_name, cluster.servers[0].name)
        assert link.bandwidth_bps == pytest.approx(mbps(7.0))

    def test_each_task_own_device(self):
        cluster, tasks = build_scenario("industrial", num_tasks=6, seed=0)
        assert len({t.device_name for t in tasks}) == 6

    def test_invalid_num_tasks(self):
        with pytest.raises(ConfigError):
            build_scenario("smart_city", num_tasks=0)

    def test_deterministic(self):
        c1, t1 = build_scenario("mobile_ar", num_tasks=3, num_servers=2, seed=11)
        c2, t2 = build_scenario("mobile_ar", num_tasks=3, num_servers=2, seed=11)
        assert [s.peak_flops for s in c1.servers] == [s.peak_flops for s in c2.servers]
        assert [t.deadline_s for t in t1] == [t.deadline_s for t in t2]


class TestModelCache:
    def test_cache_returns_same_object(self):
        a = multiexit_model("alexnet", 3, "easy")
        b = multiexit_model("alexnet", 3, "easy")
        assert a is b

    def test_cache_keys_distinguish(self):
        a = multiexit_model("alexnet", 3, "easy")
        b = multiexit_model("alexnet", 3, "hard")
        assert a is not b
