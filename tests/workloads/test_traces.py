"""Diurnal patterns and trace persistence."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.workloads.traces import (
    DiurnalPattern,
    load_trace,
    save_trace,
    windowed_rates,
)


class TestDiurnalPattern:
    def test_rate_oscillates_around_base(self):
        p = DiurnalPattern(base_rate=10.0, amplitude=0.5, period_s=100.0)
        t = np.linspace(0, 100, 1000)
        r = p.rate(t)
        assert r.max() == pytest.approx(15.0, rel=0.01)
        assert r.min() == pytest.approx(5.0, rel=0.01)

    def test_floor_clips(self):
        p = DiurnalPattern(base_rate=10.0, amplitude=0.99, floor_fraction=0.2)
        t = np.linspace(0, p.period_s, 1000)
        assert p.rate(t).min() >= 2.0 - 1e-9

    def test_generate_mean_rate(self):
        p = DiurnalPattern(base_rate=20.0, amplitude=0.6, period_s=50.0)
        arr = p.generate(500.0, seed=1)
        # full periods: time-average rate equals base
        assert len(arr) / 500.0 == pytest.approx(20.0, rel=0.1)

    def test_generate_sorted_in_horizon(self):
        p = DiurnalPattern(base_rate=5.0)
        arr = p.generate(100.0, seed=2)
        assert np.all(np.diff(arr) >= 0)
        assert arr.max() < 100.0

    def test_burstiness_visible_in_windows(self):
        p = DiurnalPattern(base_rate=20.0, amplitude=0.8, period_s=100.0)
        arr = p.generate(100.0, seed=3)
        _, rates = windowed_rates(arr, 100.0, 10.0)
        assert rates.max() > 2 * rates.min()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(base_rate=0.0),
            dict(base_rate=1.0, amplitude=1.0),
            dict(base_rate=1.0, period_s=0.0),
            dict(base_rate=1.0, floor_fraction=0.0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DiurnalPattern(**kwargs)


class TestWindowedRates:
    def test_counts(self):
        starts, rates = windowed_rates(np.array([0.5, 1.5, 1.6]), 2.0, 1.0)
        np.testing.assert_allclose(starts, [0.0, 1.0])
        np.testing.assert_allclose(rates, [1.0, 2.0])

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            windowed_rates(np.array([5.0]), 2.0, 1.0)


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        arr = np.array([0.1, 0.5, 2.75])
        save_trace(arr, path)
        np.testing.assert_allclose(load_trace(path), arr)

    def test_comments_skipped(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        path_obj = tmp_path / "trace.csv"
        path_obj.write_text("# header\n1.0\n\n2.0\n")
        np.testing.assert_allclose(load_trace(path), [1.0, 2.0])

    def test_unsorted_save_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            save_trace([2.0, 1.0], str(tmp_path / "x.csv"))

    def test_unsorted_load_rejected(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("2.0\n1.0\n")
        with pytest.raises(ConfigError):
            load_trace(str(p))
