"""Difficulty presets."""

import pytest

from repro.errors import ConfigError
from repro.workloads.difficulty import DIFFICULTY_PRESETS, difficulty_preset


class TestPresets:
    def test_three_regimes(self):
        assert set(DIFFICULTY_PRESETS) == {"easy", "mixed", "hard"}

    def test_lookup(self):
        assert difficulty_preset("easy").alpha == 1.5

    def test_unknown_raises(self):
        with pytest.raises(ConfigError):
            difficulty_preset("impossible")

    def test_regimes_ordered_by_mean_difficulty(self):
        means = {}
        for name, d in DIFFICULTY_PRESETS.items():
            g, w = d.grid()
            means[name] = float(g @ w)
        assert means["easy"] < means["mixed"] < means["hard"]
