"""JSON serialization round-trips."""

import json

import pytest

from repro.core.joint import JointOptimizer
from repro.core.plan import SurgeryPlan
from repro.errors import ConfigError
from repro.io import (
    experiment_result_to_dict,
    joint_plan_from_dict,
    joint_plan_to_dict,
    load_joint_plan,
    save_joint_plan,
    surgery_plan_from_dict,
    surgery_plan_to_dict,
)


class TestSurgeryPlanRoundTrip:
    def test_roundtrip(self):
        p = SurgeryPlan(
            kept_exits=(1, 4), thresholds=(0.8, 0.0), partition_cut=3, quantization="int8"
        )
        assert surgery_plan_from_dict(surgery_plan_to_dict(p)) == p

    def test_default_quantization(self):
        d = {"kept_exits": [4], "thresholds": [0.0], "partition_cut": 0}
        assert surgery_plan_from_dict(d).quantization == "fp32"

    def test_missing_key_raises(self):
        with pytest.raises(ConfigError):
            surgery_plan_from_dict({"kept_exits": [4]})

    def test_invalid_plan_rejected_on_load(self):
        d = {"kept_exits": [4, 1], "thresholds": [0.5, 0.0], "partition_cut": 0}
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            surgery_plan_from_dict(d)


class TestJointPlanRoundTrip:
    @pytest.fixture(scope="class")
    def plan(self, small_cluster, small_tasks, small_candidates):
        return JointOptimizer(small_cluster).solve(
            small_tasks, candidates=small_candidates, seed=0
        ).plan

    def test_dict_roundtrip(self, plan):
        restored = joint_plan_from_dict(joint_plan_to_dict(plan))
        assert restored.objective_value == plan.objective_value
        assert restored.assignment == plan.assignment
        assert restored.latencies == plan.latencies
        for name in plan.features:
            assert restored.features[name].plan == plan.features[name].plan
            assert restored.features[name].dev_flops == plan.features[name].dev_flops

    def test_file_roundtrip(self, plan, tmp_path):
        path = str(tmp_path / "plan.json")
        save_joint_plan(plan, path)
        restored = load_joint_plan(path)
        assert restored.objective_value == plan.objective_value
        # the file is real, valid JSON
        with open(path) as fh:
            raw = json.load(fh)
        assert "tasks" in raw

    def test_missing_key_raises(self):
        with pytest.raises(ConfigError):
            joint_plan_from_dict({"objective_value": 1.0})


class TestExperimentResultExport:
    def test_serializable(self):
        from repro.experiments import run_experiment

        r = run_experiment("E1", models=("alexnet",), devices=("edge_gpu",))
        d = experiment_result_to_dict(r)
        json.dumps(d, default=str)  # must not raise
        assert d["exp_id"] == "E1"
        assert len(d["rows"]) == 1
