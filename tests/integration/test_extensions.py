"""Integration tests for the extension features working together."""

import dataclasses

import numpy as np
import pytest

from repro import JointOptimizer, SimulationConfig, build_scenario, simulate_plan
from repro.core.candidates import build_candidates
from repro.core.online import ControllerConfig, EnvironmentSample, OnlineController
from repro.models.quantization import ALL_LEVELS
from repro.units import mbps
from repro.workloads.traces import DiurnalPattern, windowed_rates


class TestQuantizationEndToEnd:
    """The quantization knob flows consistently from search to simulation."""

    @pytest.fixture(scope="class")
    def instance(self):
        cluster, tasks = build_scenario(
            "smart_city", num_tasks=3, access_mbps=15.0, seed=2
        )
        cands = [
            build_candidates(t, quantization_levels=ALL_LEVELS) for t in tasks
        ]
        return cluster, tasks, cands

    def test_solver_uses_quantized_plans_on_thin_link(self, instance):
        cluster, tasks, cands = instance
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
        levels = {f.plan.quantization for f in plan.features.values()}
        assert levels & {"fp16", "int8"}  # the knob is actually used

    def test_simulated_latency_tracks_quantized_prediction(self, instance):
        cluster, tasks, cands = instance
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
        rep = simulate_plan(
            tasks, plan, cluster,
            SimulationConfig(horizon_s=40.0, warmup_s=5.0, seed=3),
        )
        for t in tasks:
            predicted = plan.latencies[t.name]
            if np.isfinite(predicted):
                measured = rep.per_task[t.name].mean_latency_s
                assert measured == pytest.approx(predicted, rel=0.45), t.name

    def test_simulated_accuracy_reflects_quantization_cost(self, instance):
        cluster, tasks, cands = instance
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
        rep = simulate_plan(
            tasks, plan, cluster,
            SimulationConfig(horizon_s=40.0, warmup_s=5.0, seed=4),
        )
        for t in tasks:
            stats = rep.per_task[t.name]
            expected = plan.features[t.name].accuracy
            sigma = (expected * (1 - expected) / stats.count) ** 0.5
            assert abs(stats.accuracy - expected) < 4 * sigma + 0.01, t.name


class TestOnlineControllerWithDiurnalTrace:
    """The controller driven by windowed rates of a diurnal workload."""

    def test_replans_on_rush_hour(self, small_cluster, small_tasks, small_candidates):
        controller = OnlineController(
            small_cluster,
            small_tasks,
            candidates=small_candidates,
            config=ControllerConfig(replan_threshold=0.5, min_replan_interval_s=0.0),
        )
        # a strong diurnal pattern measured in windows
        pattern = DiurnalPattern(base_rate=3.0, amplitude=0.9, period_s=120.0)
        arrivals = pattern.generate(120.0, seed=5)
        starts, rates = windowed_rates(arrivals, 120.0, 20.0)
        replans = 0
        for t0, rate in zip(starts, rates):
            if rate <= 0:
                continue
            fired = controller.observe(
                EnvironmentSample(
                    time_s=float(t0),
                    arrival_rates={t.name: float(rate) for t in small_tasks},
                )
            )
            replans += fired
        # the rush-hour / dead-of-night swing (>= 2x) must trigger re-plans
        assert replans >= 1
        assert controller.replan_count == replans

    def test_plan_valid_after_each_replan(self, small_cluster, small_tasks, small_candidates):
        controller = OnlineController(
            small_cluster,
            small_tasks,
            candidates=small_candidates,
            config=ControllerConfig(replan_threshold=0.2, min_replan_interval_s=0.0),
        )
        for k, bw in enumerate([40.0, 10.0, 3.0, 25.0, 40.0]):
            controller.observe(
                EnvironmentSample(
                    time_s=float(k),
                    bandwidth_bps={
                        key: mbps(bw) for key in small_cluster.topology.links
                    },
                )
            )
            plan = controller.plan
            for t in small_tasks:
                assert t.name in plan.features
                assert plan.features[t.name].accuracy >= t.accuracy_floor - 1e-9
