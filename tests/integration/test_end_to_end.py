"""Cross-module integration: the full solve -> simulate pipeline."""

import dataclasses

import numpy as np
import pytest

from repro import (
    JointOptimizer,
    Objective,
    SimulationConfig,
    build_scenario,
    best_response_offloading,
    simulate_plan,
)
from repro.baselines import EdgeOnly, Edgent
from repro.core.candidates import build_candidates


@pytest.fixture(scope="module")
def instance():
    cluster, tasks = build_scenario("smart_city", num_tasks=4, seed=0)
    cands = [build_candidates(t) for t in tasks]
    return cluster, tasks, cands


class TestSolveSimulateRoundTrip:
    def test_prediction_vs_measurement(self, instance):
        """Predicted expected latency within 40% of long-horizon simulation."""
        cluster, tasks, cands = instance
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands).plan
        rep = simulate_plan(
            tasks, plan, cluster, SimulationConfig(horizon_s=60.0, warmup_s=10.0, seed=1)
        )
        for t in tasks:
            predicted = plan.latencies[t.name]
            measured = rep.per_task[t.name].mean_latency_s
            assert measured == pytest.approx(predicted, rel=0.4), t.name

    def test_measured_accuracy_meets_floor(self, instance):
        cluster, tasks, cands = instance
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands).plan
        rep = simulate_plan(
            tasks, plan, cluster, SimulationConfig(horizon_s=60.0, warmup_s=5.0, seed=2)
        )
        for t in tasks:
            # sampled accuracy within 3-sigma binomial noise of the floor
            stats = rep.per_task[t.name]
            sigma = (t.accuracy_floor * (1 - t.accuracy_floor) / stats.count) ** 0.5
            assert stats.accuracy >= t.accuracy_floor - 3 * sigma

    def test_joint_beats_baselines_when_simulated(self, instance):
        cluster, tasks, cands = instance
        joint = JointOptimizer(cluster).solve(tasks, candidates=cands).plan
        edge = EdgeOnly().solve(tasks, cluster, candidates=cands)
        edgent = Edgent().solve(tasks, cluster, candidates=cands)
        cfg = SimulationConfig(horizon_s=30.0, warmup_s=3.0, seed=3)
        m_joint = simulate_plan(tasks, joint, cluster, cfg).mean_latency_s
        m_edge = simulate_plan(tasks, edge, cluster, cfg).mean_latency_s
        m_edgent = simulate_plan(tasks, edgent, cluster, cfg).mean_latency_s
        assert m_joint <= m_edge * 1.05
        assert m_joint <= m_edgent * 1.05

    def test_distributed_plan_simulates_close_to_centralized(self, instance):
        cluster, tasks, cands = instance
        bcd = JointOptimizer(cluster).solve(tasks, candidates=cands).plan
        br = best_response_offloading(tasks, cluster, candidates=cands, seed=0).plan
        cfg = SimulationConfig(horizon_s=30.0, warmup_s=3.0, seed=4)
        m_bcd = simulate_plan(tasks, bcd, cluster, cfg).mean_latency_s
        m_br = simulate_plan(tasks, br, cluster, cfg).mean_latency_s
        assert m_br <= m_bcd * 1.3


class TestObjectiveConsistency:
    def test_deadline_objective_improves_miss_rate(self, instance):
        cluster, tasks, cands = instance
        tight = [dataclasses.replace(t, deadline_s=t.deadline_s * 0.8) for t in tasks]
        lat_plan = JointOptimizer(cluster, objective=Objective.AVG_LATENCY).solve(
            tight, candidates=cands
        ).plan
        miss_plan = JointOptimizer(cluster, objective=Objective.DEADLINE_MISS).solve(
            tight, candidates=cands
        ).plan
        cfg = SimulationConfig(horizon_s=40.0, warmup_s=4.0, seed=5)
        m_lat = simulate_plan(tight, lat_plan, cluster, cfg)
        m_miss = simulate_plan(tight, miss_plan, cluster, cfg)
        # optimizing for deadlines never yields a (much) worse miss rate
        assert m_miss.miss_rate <= m_lat.miss_rate + 0.05

    def test_scenarios_all_solvable(self):
        for name in ("smart_city", "industrial", "mobile_ar"):
            cluster, tasks = build_scenario(name, num_tasks=3, seed=1)
            res = JointOptimizer(cluster).solve(tasks)
            assert np.isfinite(res.plan.objective_value), name
