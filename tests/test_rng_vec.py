"""Vectorized child-stream draws must match NumPy bit for bit."""

import numpy as np
import pytest

from repro.rng import derive, derive_material
from repro.rng_vec import (
    first_uniforms,
    first_uniforms_looped,
    vectorized_matches_numpy,
)


def test_selftest_passes():
    assert vectorized_matches_numpy() is True


@pytest.mark.parametrize(
    "material",
    [
        [],
        [7],
        [20220822, 1668244581],
        [2**63 - 1, 3, 2**40 + 17],  # multi-word entropy values
        [1, 2, 3, 4, 5, 6],  # longer than the 4-word pool
    ],
)
def test_matches_looped_reference(material):
    ids = np.array([0, 1, 2, 17, 999, 2**31, 2**32 - 1], dtype=np.uint64)
    np.testing.assert_array_equal(
        first_uniforms(material, ids), first_uniforms_looped(material, ids)
    )


def test_matches_derive_streams():
    """The simulator contract: one draw from ``derive(seed, "exec", task, id)``."""
    material = derive_material(42, "exec", "task_a")
    ids = np.arange(50)
    got = first_uniforms(material, ids)
    want = np.array([derive(42, "exec", "task_a", int(i)).random() for i in ids])
    np.testing.assert_array_equal(got, want)


def test_empty_ids():
    out = first_uniforms([1, 2], np.array([], dtype=np.int64))
    assert out.shape == (0,)
    assert out.dtype == np.float64


def test_wide_ids_fall_back_to_loop():
    """Ids beyond one 32-bit entropy word take the loop, still exact."""
    ids = np.array([2**32, 2**40 + 3], dtype=np.uint64)
    got = first_uniforms([5], ids)
    np.testing.assert_array_equal(got, first_uniforms_looped([5], ids))
