#!/usr/bin/env python
"""Regenerate EXPERIMENTS.md from live experiment runs.

    python scripts/generate_experiments_md.py [output-path]

Runs every registered experiment (E1-E18 + ablations A1-A6) at
benchmark-sized knobs, renders the measured tables with the reconstructed
paper-expectation commentary, and writes the record.  Seeds are fixed, so
the output is bit-reproducible on a given build.
"""

import sys

from repro.analysis.report import render_markdown_report, render_scorecard
from repro.experiments import EXPERIMENTS, run_experiment

#: Benchmark-sized knobs (defaults elsewhere are the same or larger).
KNOBS = {
    "E4": dict(loads=(2, 4, 8), horizon_s=15.0),
    "E5": dict(horizon_s=15.0),
    "E6": dict(num_scenarios=25),
    "E8": dict(num_instances=4),
    "E11": dict(window_s=8.0),
    "E12": dict(horizon_s=15.0),
    "E14": dict(horizon_s=40.0),
    "E15": dict(horizon_s=15.0),
    "E16": dict(horizon_s=15.0),
    "E17": dict(sizes=((64, 8, 4), (192, 16, 8))),
    "E18": dict(horizon_s=15.0, warmup_s=2.0),
    "A4": dict(loads=(8, 24), horizon_s=15.0),
}

PREAMBLE = """\
⚠ **Read the provenance note in [`DESIGN.md`](DESIGN.md) first.**  The
paper's own tables/figures were not available; each experiment below states
the *reconstructed* expectation (the qualitative shape any faithful
implementation of the title's system must produce, anchored on the sibling
LEIME paper's published 1.1–18.7× speedup band) and the numbers this
repository measures.  Absolute milliseconds are properties of the simulated
substrate, not of the authors' testbed; the claims being reproduced are the
*shapes*: who wins, by roughly what factor, and where crossovers fall.

Sections E1–E18 are the reconstructed evaluation; sections A1–A6 ablate this
repository's own design choices (DESIGN.md §4).  Regenerate everything with

```bash
pytest benchmarks/ --benchmark-only           # one bench target per experiment
python scripts/generate_experiments_md.py     # this file
```
"""

COMMENTARY = {
    "A1": """**Design claim:** the default enumeration budget sits on the flat part of
the quality curve.
**Measured:** minimal budget costs +2.3% objective; fine (2.2× candidates)
improves the default by <0.1%.""",
    "A2": """**Design claim (extension S17):** the precision knob pays on thin links
and never hurts.
**Measured:** int8 turns an infeasible 10 Mbps instance feasible and wins
4.3× at 40 Mbps, 2.5× at 150 Mbps, always meeting the accuracy floors.""",
    "A3": """**Design claim:** dominance pruning is allocation-safe — identical
objectives at a large candidate reduction.
**Measured:** objectives match exactly at ~3.8–3.9× candidate reduction.""",
    "A4": """**Design claim:** the M/G/1 terms inside the solver prevent
queue-unstable plan choices.
**Measured:** with smart allocation still in place the blind variant stays
near par at light load; toward saturation the aware solver is (weakly)
ahead — removing allocation too yields the Edgent collapse of E4/E12.""",
    "A6": """**Design claim (see DESIGN.md §6):** per-exit coordinate-descent
refinement recovers what coarse shared-threshold enumeration loses.
**Measured:** +2.2% objective recovered on a single-threshold grid (landing
within 0.02% of the fine grid), monotone never-worse, at ~0.1 s cost.""",
    "A5": """**Design claim:** the sqrt share rule is the KKT optimum of rate-weighted
per-request latency.
**Measured:** the sweep shows a symmetric bowl minimized exactly at exponent
0.5; fairness (Jain) is monotone decreasing in the exponent, exposing the
fairness/efficiency dial.""",
    "E1": """**Paper expectation (reconstructed):** per-layer latency spans orders of
magnitude across devices; boundary activation sizes are non-monotone in
depth, so a mid-network cut can ship far less than the raw input.
**Measured — shape holds:** the Pi-4 runs VGG-16 in ~4.4 s where the GPU
server takes ~8.7 ms (500×); every model's smallest interior boundary
(2–4 KiB) is ~150× below the 0.57 MiB input.""",
    "E2": """**Paper expectation:** device-only flat; edge-only decays as 1/bandwidth
and overtakes device-only past a crossover; partition tracks the better of
the two; the joint plan (partition + exits) lower-bounds everything.
**Measured — shape holds:** crossover at ~0.9 Mbps for VGG-16 on a Pi-4 vs a
GPU server; the joint plan is at or below every baseline at every bandwidth;
below the crossover it beats device-only by 1.4× via local early exits.""",
    "E3": """**Paper expectation:** latency non-decreasing in the accuracy floor; loose
floors admit aggressive exits, tight floors force deep execution; floors
above a model's attainable accuracy are infeasible.
**Measured — shape holds:** monotone for every model; AlexNet (56.5% top-1)
correctly reports floors ≥ 0.60 infeasible.""",
    "E4": """**Paper expectation:** all curves rise with load; contention-oblivious
surgery (Neurosurgeon/Edgent) collapses first; joint degrades slowest.
**Measured — shape holds:** at 8 tasks joint holds 206 ms mean / 543 ms p99
while edge-only and Neurosurgeon blow up to 910 ms mean with 10.3 s p99
(4.4× mean, 19× p99) and Edgent sits at 2.2× joint.""",
    "E5": """**Paper expectation:** satisfaction monotone in the deadline scale; joint
reaches high satisfaction at tighter deadlines than any baseline.
**Measured — shape holds:** at 2× deadlines joint satisfies 94.4% vs
71.7–85.0% for the baselines; at 4× joint reaches 100% while full-offload
strategies are still at ~87%.""",
    "E6": """**Paper expectation (anchored on the sibling LEIME paper's 1.1–18.7×):**
speedups near 1× where a baseline happens to be right, order-10× where it is
badly wrong, pooled range spanning roughly that band.
**Measured — shape holds:** competent baselines have medians 1.2–1.4× with
p95 up to 40×; placement baselines median 2–3× with maxima 29–57×; no-offload
baselines exceed 100× where devices can't sustain load (capped at 100× in
the table).  Pooled range ~1.0×–100×, fully covering the 1.1–18.7× band.""",
    "E7": """**Paper expectation:** both solvers monotone non-increasing; BCD converges
within a handful of iterations; the distributed variant lands close.
**Measured — shape holds:** BCD converges in ≤4 iterations; best response
reaches a pure equilibrium in 2 rounds with <1% gap to centralized.""",
    "E8": """**Paper expectation:** practical solvers within a few percent of the
enumerated optimum on instances small enough to brute-force.
**Measured — stronger than required:** both BCD and best response hit the
exhaustive optimum exactly (0.00% gap) on all sampled instances.""",
    "E9": """**Paper expectation:** fast enough to re-run online on every environment
change; near-linear growth in tasks.
**Measured — shape holds:** the solve stays ≤~1 s up to 64 tasks × 8
servers; one-time candidate generation (cacheable across re-solves)
dominates at ~0.14 s/task.""",
    "E10": """**Paper expectation:** heterogeneity-oblivious placement degrades as the
fastest-to-slowest spread grows; joint exploits the fast servers.
**Measured — shape holds:** joint is flat (~239 ms) across spreads 1–16×
while round-robin degrades from 249 ms to unstable (∞) at spread 16; the
joint-vs-round-robin gain grows 1.04× → 1.66× → unbounded.""",
    "E11": """**Paper expectation:** indistinguishable in good windows; in deep fades the
static plan's offloading stalls while re-optimization retreats to earlier
exits/local execution.
**Measured — shape holds:** identical at nominal bandwidth; in the 1.6 Mbps
deep-fade window re-optimization cuts mean latency 2.5× (both regimes remain
overloaded, but the adaptive plan sheds most of the wire traffic).""",
    "E12": """**Paper expectation:** each single knob (surgery-only; allocation-only)
beats no-knob placement; the joint combination beats both; the distributed
variant lands near the centralized one.
**Measured — shape holds:** joint ≈ distributed < cloud-only <
allocation-only < Edgent < edge-only ≪ device-only (simulated means).""",
    "E13": """**Paper expectation:** device-only burns the most compute energy; full
offload trades compute joules for radio + idle-wait joules; joint sits on
the knee of the tradeoff.
**Measured — shape holds:** joint is the energy minimum (~285 mJ) — 35%
below device-only (all compute) and 44% below edge-only (all radio +
waiting) — at a per-request latency beating both extremes.""",
    "E14": """**Expectation:** the per-stage M/G/1 tandem model used inside the
optimizer should track simulation closely away from saturation and may
diverge near it (steady-state vs finite horizon).
**Measured — shape holds:** |error| 3–6% up to ~0.75 utilization; at the
near-saturation point the steady-state prediction exceeds the finite-horizon
measurement by ~114%, as documented.""",
    "E15": """**Expectation (extension, S19):** admission ratio ~1 until the edge
saturates, then decays; the *admitted* set's measured satisfaction stays
high throughout — reject rather than degrade everyone.
**Measured — shape holds:** full admission through 16 tasks, 59% at 32;
admitted-set satisfaction stays at 73–85% while E4's un-gated system
degrades everyone.""",
    "E16": """**Expectation (extension, S21):** with no failure handling, every request
stranded on the crashed server is lost; the recovery ladder (timeout →
retry → failover → local degradation) completes all of them at a latency
cost (retries pile onto the survivor); adding failure-triggered plan
repair shortens the degraded window because new arrivals never target the
dead server at all.
**Measured — shape holds:** static loses 84 requests (11.6% miss among
survivors — the misses it *doesn't* see are the losses); failover drives
losses to 0 but pays mean 12.7 s while the survivor drains the backlog;
failover+repair also loses nothing, sheds 40 requests of one
now-infeasible task, and restores goodput to within 6% of the fault-free
static plan (10.5 vs 11.1 rps).""",
    "E17": """**Expectation (extension, S11/S12, DESIGN.md §11):** the sharded
hierarchical control plane should sit between the two poles — much faster
than one centralized solve (per-shard sub-problems are superlinearly
cheaper), within a few % of its objective (cross-shard migration repairs
what the partition severs), while the coordination-free best-response game
bounds how little control-plane machinery can achieve.
**Measured — shape holds:** at the gate's 4096×128/64-shard instance the
sharded arm is ≈5–6× faster than centralized at ≤1% objective difference
(`benchmarks/baselines/shard_baseline.json`; migration accepts a handful of
moves then quiesces).  At the small sizes here the centralized solver is
still comfortably fast, so the speedup is modest — the sharded arm's win
grows with n·m, which is the point of the experiment.""",
    "E18": """**Expectation (extension, DESIGN.md §12):** buffered (μ+κ(ε)·σ)
certification must be *calibrated* — realized request-level violation among
certified tasks stays ≤ ε in every (ε, load) cell — while the risk-blind
deterministic arm's certified set violates freely under jitter at high load.
Cantelli is distribution-free, so slack (conservatism) is expected, and the
buffered arm certifies (weakly) fewer tasks.
**Measured — shape holds:** buffered realized violation is at or below ε in
all 9 cells (ε ∈ {0.01, 0.05, 0.1} × load {0.6, 1.0, 1.4}×, σ=0.15); the
deterministic arm exceeds ε on the over-loaded cells where the buffered arm
stays within budget.  `scripts/perf_gate.py --suite risk` re-checks the
calibration booleans plus risk-off bit-identity on every run.""",
}

SCORECARD = [
    ("E1", "motivation figure", "100×+ device spread; non-monotone boundaries", "✅"),
    ("E2", "crossover figure", "device/edge crossover; joint lower bound", "✅ (crossover ≈ 0.9 Mbps)"),
    ("E3", "frontier table", "latency monotone in accuracy floor", "✅"),
    ("E4", "load figure", "joint degrades slowest; surgery-only collapses", "✅ (19× p99 gap at 8 tasks)"),
    ("E5", "deadline figure", "joint satisfies at tighter deadlines", "✅ (94% vs ≤85% at 2×)"),
    ("E6", "speedup distribution", "spans ~1.1–18.7× band", "✅ (1.0–100× pooled)"),
    ("E7", "convergence figure", "monotone, few iterations, small BR gap", "✅ (≤4 iters, <1% gap)"),
    ("E8", "optimality table", "within a few % of optimum", "✅ (0.00%)"),
    ("E9", "scalability figure", "online-re-solve fast", "✅ (≤1 s at 64×8)"),
    ("E10", "heterogeneity figure", "joint gain widens with spread", "✅ (1.04× → ∞)"),
    ("E11", "dynamics figure", "re-optimization wins in fades", "✅ (2.5× in deep fade)"),
    ("E12", "ablation table", "joint ≤ each single knob ≤ no knob", "✅"),
    ("E13", "energy figure", "joint on the knee", "✅ (−35%/−44% energy)"),
    ("E14", "queueing validation", "close off-saturation, diverges at it", "✅ (3–6% off-saturation)"),
    ("E15", "admission extension", "ratio decays, admitted stay satisfied", "✅"),
    ("E16", "resilience extension", "static loses; ladder recovers; repair restores goodput", "✅ (84 → 0 lost)"),
    ("E17", "control-plane extension", "sharded ≈ centralized objective at a fraction of the wall", "✅ (≈5× at 4k tasks, <1% gap)"),
    ("E18", "chance-constrained extension", "realized tail violation ≤ ε among certified tasks", "✅ (all ε × load cells)"),
    ("A1", "candidate budget", "objective saturates at default budget", "✅ (+2.3% for minimal)"),
    ("A2", "quantization knob", "big wins on thin links, never hurts", "✅ (4.3× at 40 Mbps)"),
    ("A3", "dominance pruning", "identical objectives, ~4× fewer candidates", "✅"),
    ("A4", "M/G/1 in solver", "aware ≤ blind; edge near saturation", "✅"),
    ("A5", "share exponent", "rate-weighted mean minimized at 0.5", "✅ (exact)"),
    ("A6", "threshold refinement", "recovers coarse-grid loss, never hurts", "✅ (+2.2% on single grid)"),
]


#: Static appendices: wall-clock tables measured on the reference container
#: by the perf suites (numbers change only when the corresponding baseline
#: is regenerated, so they are checked in as text, not re-measured here).
WALL_CLOCK_APPENDICES = """\

## Appendix: simulator wall-clock (fast path + replication fan-out)

Before/after of the simulator hot-path work (`sim/fastpath.py`,
`run_replications`), measured on the reference container with
`benchmarks/bench_p02_sim_hotpath.py` on the E4-style workload
(smart_city × 64 tasks, 60 s horizon, ≈14 k requests per replication).
Reports are byte-identical between configurations (asserted by the bench),
so only wall time changes.

| configuration | before (event loop, serial) | after | speedup |
|---|---:|---:|---:|
| 1 replication | 1.71 s | 0.14 s (fast path) | ≈12× |
| 8 replications | 19.1 s | 3.0 s (fast path, 4 workers) | ≈6× |
| perf-gate workload (16 tasks, 20 s) | 0.146 s | 0.018 s | ≈8× |

The event-loop engine remains the reference: telemetry runs and
`fast_path=False` use it, and `scripts/perf_gate.py --suite sim`
re-verifies fast ≡ event identity plus exact `sim.*` counter equality on
every run.

## Appendix: million-request streaming wall-clock

Capacity study of the chunked streaming sweep
(`SimulationConfig(streaming=True)` + `run_cells`), measured on the
reference container (1 CPU) with `scripts/perf_gate.py --suite stream` on
the perf-gate workload stretched to ≈1M requests (smart_city × 16 tasks,
aggregate 59 req/s, ≈16 949 s horizon, seed 0; 999 423 requests
generated). The streaming run's scalar summary matches the record-backed
run exactly on counters / miss rate / accuracy / goodput and to <1e-9
relative on mean latency (asserted by the gate on every run).

| configuration | wall | throughput | peak RSS |
|---|---:|---:|---:|
| record-backed one-shot (keeps 1M records) | 16.8 s | ≈60 k req/s | 762 MiB |
| streaming, single cell (`streaming=True`) | 1.4 s | ≈710 k req/s | 160 MiB |
| streaming, 4 cells serial (`run_cells`) | 1.45 s | ≈690 k req/s | bounded per cell |

Headline: ≈12× the throughput at ≈5× less memory, and memory stays flat
in the horizon (O(tasks × histogram bins) accumulators, ≈33 MiB above
interpreter+workload baseline at 1M requests), so multi-hour horizons are
now simulable. The 4-cell process-pool fan-out merges to byte-identical
counters vs. the serial fan-out (gated); on this 1-core container the
pool is pure overhead (0.6× vs. serial cells), so the gated speedup is
sharded-streaming vs. record-backed (≈10×, floor 3×) and the
serial-vs-pooled cell ratio is recorded as information in
`benchmarks/baselines/BENCH_stream.json`. On a ≥4-core machine the cell
fan-out additionally parallelizes the remaining wall clock.

## Appendix: sharded control-plane wall-clock

The E17 gate instance (`scripts/perf_gate.py --suite shard`), measured on
the reference container (1 CPU): smart_city × 4096 tasks on 128 servers,
arrival rates × 0.1 for queue stability, seed 0, local search off in both
arms at this size (E9 precedent). Wall clocks are the min over repeated
runs; plans are fully seeded, so objectives and the migration history are
exact (gated).

| arm | wall | objective | note |
|---|---:|---:|---|
| centralized (one joint solve) | ≈25 s | 1.0149 | one 4096×128 assignment + sweeps |
| sharded, 64 shards (interleave) | ≈4.4 s | 1.0085 | **≈5.7×**; migration history [6, 0] |

The sharded objective lands ~0.6% *better* than centralized here: the
restricted per-shard search escapes the local optimum the centralized
descent settles into, and cross-shard migration repairs the partition
coupling (6 moves, then quiescent). `shards=1` reproduces the centralized
solver bit-exactly on all 7 reference instances (gated), so the hierarchy
is pay-as-you-go. Every gate run appends the trajectory to
`benchmarks/baselines/BENCH_solver.json`.
"""


def phase_breakdown_appendix(num_tasks: int = 64, num_servers: int = 8) -> str:
    """Markdown appendix: traced solver phase breakdown on the E9-sized instance.

    Wall-clock milliseconds vary run to run; the *shape* (candidate build and
    descent dominating, near-zero untraced remainder) is the documented claim.
    """
    from repro.core.joint import JointOptimizer
    from repro.telemetry.trace import get_tracer, phase_breakdown
    from repro.workloads.scenarios import build_scenario

    cluster, tasks = build_scenario(
        "smart_city", num_tasks=num_tasks, num_servers=num_servers, seed=0
    )
    tracer = get_tracer().enable()
    try:
        JointOptimizer(cluster).solve(tasks, seed=0)
    finally:
        tracer.disable()
    spans = tracer.drain()
    rows = phase_breakdown(spans, root="solve")
    lines = [
        "\n---\n",
        "## Appendix: solver phase breakdown (telemetry)\n",
        f"One traced `solve` of the E9-sized instance ({num_tasks} tasks × "
        f"{num_servers} servers), captured with the `repro.telemetry` tracer "
        "(`python -m repro trace smart_city --tasks "
        f"{num_tasks} --servers {num_servers}`).  Regenerated with this file; "
        "milliseconds are machine-dependent, the phase *shares* are the "
        "reproducible part.\n",
        "| phase | spans | total (ms) | share of solve |",
        "|---|---:|---:|---:|",
    ]
    for name, count, total_s, fraction in rows:
        lines.append(
            f"| `{name}` | {count} | {total_s * 1e3:.1f} | {fraction * 100:.1f}% |"
        )
    return "\n".join(lines) + "\n"


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "EXPERIMENTS.md"
    results = []
    for eid in sorted(EXPERIMENTS, key=lambda e: (e[0], int(e[1:]))):
        print(f"running {eid}...", flush=True)
        results.append(run_experiment(eid, **KNOBS.get(eid, {})))
    body = render_markdown_report(
        results,
        title="EXPERIMENTS — paper-vs-measured record",
        preamble=PREAMBLE,
        commentary=COMMENTARY,
    )
    body += "\n---\n\n## Summary scorecard\n\n" + render_scorecard(SCORECARD) + "\n"
    print("tracing the E9-sized solve for the phase-breakdown appendix...", flush=True)
    body += phase_breakdown_appendix()
    body += WALL_CLOCK_APPENDICES
    with open(out_path, "w") as fh:
        fh.write(body)
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main()
