#!/usr/bin/env python
"""Perf smoke gate for the joint solver (E9) and the simulator hot path.

``--suite solver`` (default) runs the E9 experiment and compares the largest
instance against a checked-in baseline:

- ``solve_s`` may not regress beyond ``--factor`` (default 1.5×) — a coarse
  wall-clock guard, deliberately loose to tolerate machine variance;
- the deterministic work counters (``allocate_calls``, ``latency_evals``,
  ``allocate_group_solves``) may not grow beyond the same factor — these are
  machine-independent, so they catch "same wall time, twice the work"
  regressions that a timing gate on a faster machine would miss.  The
  counters are read from a :class:`~repro.telemetry.metrics.MetricsRegistry`
  snapshot (``solver.*``) published by the solver's perf layer, so the gate
  exercises the same path ``repro trace`` exports.

``--suite sim`` measures the simulator on a fixed 16-task / 20 s workload:

- ``sim_s`` (the vectorized fast path) may not regress beyond ``--factor``;
- the deterministic ``sim.*`` work counters (requests, records,
  discarded_warmup, events) must match the baseline **exactly** — the
  workload is fully seeded, so any drift means the simulation itself
  changed, and the gate prints a per-counter diff;
- the fast-path and event-loop reports must be equal (the bit-identity
  contract), re-checked on every gate run.

``--suite stream`` gates the million-request streaming path:

- a 1,000,000-request single-cell streaming run (measured in a fresh
  subprocess so its peak RSS is attributable) must stay under the
  ``--rss-ceiling-mb`` memory ceiling and within ``--factor`` of the
  baseline requests/sec;
- its ``sim.*`` counters must match the baseline **exactly**, and its
  scalar summary (counters, miss rate, accuracy, goodput exactly; mean
  latency to 1e-9 relative) must match a record-backed one-shot run on the
  same seed — the streaming-equivalence contract;
- a 4-cell sharded fan-out must merge to byte-identical counters whether
  cells run serially or on a process pool, and must beat the record-backed
  one-shot by ``--min-speedup`` (default 3×) wall-clock — the capacity
  unlock this suite exists to protect.  The serial/parallel cell ratio is
  also recorded; it only demonstrates scaling when ≥4 CPUs are available,
  so it is reported rather than gated.

``--suite shard`` gates the sharded hierarchical control plane:

- on 7 fixed-seed reference instances, a 1-shard ``solve_sharded`` must be
  **bit-identical** to the centralized solver (assignment, features,
  latencies, shares, objective, history) — the degenerate-path contract;
- serial and parallel shard fan-out must produce identical plans (shard
  seeds are derived upfront, the restart pool is reused, never nested);
- on a queue-stabilized 4k-task × 128-server instance, the sharded solve
  must stay within ``--factor`` of the baseline wall clock, beat the
  centralized solve by ``--min-shard-speedup``, and keep the objective
  within ``--max-regression-pct`` (default 5%) of centralized; its
  migration history must match the baseline exactly (fully seeded).  As in
  the stream suite, the speedup floor (default 4.5×) sits below the
  baseline's recorded ratio (≈5.7×) so run-to-run wall-clock noise on the
  two arms' minima cannot flap the gate;
- on a 16k-task × 256-server instance, the sparse affinity index must be
  **bit-identical** to the dense reference (plan + migration history), beat
  it end-to-end by ``--min-shard-speedup-16k`` (default 1.15×, measured
  ≈1.4×; the per-shard descents are identical work in both arms, so
  end-to-end gains are floored by them), and shrink the coordinator's *own*
  overhead —
  wall time minus the sum of per-shard solve times, i.e. index build,
  homing, stitching, migration screening — by
  ``--min-coordinator-speedup-16k`` (default 3×, measured ≈4.8×); an
  incremental ``resolve_dirty`` of one drifted shard must beat the full
  sharded re-solve by ``--min-resolve-speedup`` (default 10×, measured
  ≈20×).

``--suite obs`` gates the streaming SLO observability plane:

- windowed SLO metrics must be **bit-identical** across the event loop, the
  one-shot fast path, and the chunked streaming sweep on the fixed-seed sim
  workload (``WindowedMetrics.fingerprint()`` and ``SLOReport.fingerprint()``
  equality — the integer-state contract);
- a 1M-request *monitored* streaming run (fresh subprocess, windowed metrics
  on) must stay within ``--max-monitor-overhead`` (default 1.15×) of the
  un-monitored streaming run's wall time and under the same
  ``--rss-ceiling-mb`` memory ceiling — monitoring may not break the
  bounded-memory capacity unlock;
- its windowed and SLO fingerprints must be identical across probe rounds
  and must match the checked-in baseline exactly (fully seeded);
- the OpenMetrics exposition of the run's ``sim.*`` counters must be
  well-formed (``# EOF`` terminator, ``_total`` counter families).

``--suite risk`` gates the chance-constrained (mean+κ·σ) solver path and the
service-jitter simulator path — a pure contract gate (no wall-clock baseline
of its own):

- on fixed-seed reference instances, a solve with ``RiskConfig(buffer="none")``
  must be **bit-identical** to a risk-free solve (plan + history), both
  centralized and sharded — the risk-off degenerate contract;
- the default (noise-free) sim workload's ``sim.*`` counters must still match
  the checked-in sim baseline exactly — the jitter plumbing may not perturb
  the deterministic replay;
- with per-request jitter on (σ=0.2), the fast path, the event loop, and the
  chunked streaming sweep must agree (records bit-exact fast vs event;
  counters + scalar summary exact for streaming) — the engines draw the same
  counter-based per-request factors regardless of evaluation order;
- a paired interleaved timing of risk-free vs ``buffer="none"`` solves must
  stay within ``--max-risk-overhead`` (default 1.05×, measured ≈1.00×) —
  threading the risk hooks through the hot path may not tax the default
  configuration;
- a reduced-horizon E18 run must report ``calibration_ok`` (realized tail
  violation ≤ ε in every (ε, load) cell) and ``beats_deterministic`` (at
  least one over-ε cell where buffering lowers the violation rate) — the
  calibrated-guarantee contract.

``--artifacts-dir DIR`` additionally writes CI-uploadable artifacts for any
suite: the raw measurement JSON, a solver phase-breakdown table, and (obs
suite) a replayable ``metrics.jsonl`` stream + ``openmetrics.txt`` snapshot.

Every stream run (check or update) appends a trajectory entry to
``benchmarks/baselines/BENCH_stream.json`` — requests/sec, peak RSS,
speedups — so future PRs inherit a perf history.  Shard runs do the same to
``benchmarks/baselines/BENCH_solver.json`` (wall clocks, speedup,
regression, migrations).

``--check-overhead`` instead measures a tracing-**disabled** solve (or, for
``--suite sim``, a telemetry-disabled event-loop run) and asserts its wall
time stays within ``--overhead`` (default 2%) of the baseline — guarding
the instrumentation's disabled path against creeping cost.  Refresh the
baseline on the measuring machine first (``--update``): a 2% band is only
meaningful against numbers from the same hardware.

Usage:

    PYTHONPATH=src python scripts/perf_gate.py                   # solver check
    PYTHONPATH=src python scripts/perf_gate.py --update          # rewrite baseline
    PYTHONPATH=src python scripts/perf_gate.py --check-overhead  # telemetry overhead
    PYTHONPATH=src python scripts/perf_gate.py --suite sim       # simulator check
    PYTHONPATH=src python scripts/perf_gate.py --suite stream    # 1M-request gate
    PYTHONPATH=src python scripts/perf_gate.py --suite shard     # control-plane gate
    PYTHONPATH=src python scripts/perf_gate.py --suite risk      # chance-constrained gate

Exit code 0 = within budget, 1 = regression.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
from pathlib import Path
from time import perf_counter

from repro.experiments import e09_scalability
from repro.telemetry.metrics import MetricsRegistry

_BASELINE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
DEFAULT_BASELINE = _BASELINE_DIR / "e09_solver_baseline.json"
DEFAULT_SIM_BASELINE = _BASELINE_DIR / "sim_baseline.json"
DEFAULT_STREAM_BASELINE = _BASELINE_DIR / "stream_baseline.json"
DEFAULT_SHARD_BASELINE = _BASELINE_DIR / "shard_baseline.json"
DEFAULT_OBS_BASELINE = _BASELINE_DIR / "obs_baseline.json"
STREAM_TRAJECTORY = _BASELINE_DIR / "BENCH_stream.json"
SOLVER_TRAJECTORY = _BASELINE_DIR / "BENCH_solver.json"

#: Deterministic solver counters gated alongside wall time (ratio-gated).
GATED_COUNTERS = ("allocate_calls", "allocate_group_solves", "latency_evals")

#: Deterministic simulator counters — gated by **exact** equality: the sim
#: workload is fully seeded, so any drift means simulation behavior changed.
SIM_GATED_COUNTERS = ("requests", "records", "discarded_warmup", "events")

#: Offered load of the streaming gate, in requests (horizon is derived).
STREAM_TARGET_REQUESTS = 1_000_000
#: Traffic cells of the sharded fan-out check.
STREAM_CELLS = 4

#: Fixed-seed reference instances for the 1-shard ≡ centralized bit-identity
#: check: (scenario, tasks, servers, seed).  Small on purpose — identity is a
#: structural property, not a scale one.
SHARD_REFERENCE_INSTANCES = (
    ("smart_city", 6, 2, 0),
    ("smart_city", 10, 3, 1),
    ("smart_city", 16, 4, 2),
    ("industrial", 8, 2, 3),
    ("industrial", 12, 4, 4),
    ("mobile_ar", 8, 3, 5),
    ("mobile_ar", 14, 4, 6),
)

#: The shard suite's scale instance.  Arrival rates are scaled down so the
#: 4k-task instance is queue-stable (finite objectives in both arms); the
#: O(n·m) local search is off at this size in both arms per the E9
#: precedent, so the comparison isolates the control-plane structure.
SHARD_SCALE_INSTANCE = dict(
    scenario="smart_city",
    tasks=4096,
    servers=128,
    server_spread=4.0,
    shards=64,
    shard_by="interleave",
    migration_rounds=3,
    rate_scale=0.1,
    seed=0,
)

#: The sparse-affinity scale instance: 16k tasks × 256 servers.  Both
#: affinity arms run the identical per-shard descents, so the instance is
#: sized to make the coordinator's own overhead (index build, homing,
#: stitch, migration screen) the visible term — 256 single-server shards
#: maximize the number of cross-shard candidates the index must screen.
SHARD_SCALE_16K = dict(
    scenario="smart_city",
    tasks=16384,
    servers=256,
    server_spread=4.0,
    shards=256,
    shard_by="interleave",
    migration_rounds=3,
    rate_scale=0.1,
    seed=0,
)


def measure(rounds: int = 3) -> dict:
    """E9 runs reduced to the gate's JSON-safe shape.

    Wall time is the best of ``rounds`` runs: the largest instance solves in
    ~0.1 s, where scheduler noise and cold per-process memo caches on the
    first run dwarf any real regression.  The work counters are deterministic,
    so they come from the last run, routed through a metrics-registry
    snapshot (the ``solver.*`` names ``repro trace`` exports).
    """
    best_solve = float("inf")
    for _ in range(rounds):
        result = e09_scalability.run()
        sizes = sorted(result.extras["solve_s"], key=lambda nm: nm[0] * nm[1])
        largest = sizes[-1]
        best_solve = min(best_solve, result.extras["solve_s"][largest])
    key = f"{largest[0]}x{largest[1]}"
    perf = result.extras["perf"][key]
    registry = MetricsRegistry()
    for name, value in perf.items():
        if name != "solve_s":
            registry.counter(f"solver.{name}").inc(int(value))
    snapshot = registry.snapshot()
    return {
        "experiment": "E9",
        "largest_instance": key,
        "solve_s": best_solve,
        "counters": {
            name: snapshot[f"solver.{name}"]["value"] for name in GATED_COUNTERS
        },
        "metrics": {name: m["value"] for name, m in sorted(snapshot.items())},
    }


def _sim_workload():
    """The gate's fixed simulator workload: smart_city × 16 tasks, 20 s horizon.

    Built fresh each call (imports stay lazy so ``--suite solver`` keeps its
    original import footprint); everything downstream is seeded, so repeated
    builds produce the identical plan and identical simulation.
    """
    from repro.core.candidates import build_candidates
    from repro.core.joint import JointOptimizer
    from repro.sim import SimulationConfig
    from repro.workloads.scenarios import build_scenario

    cluster, tasks = build_scenario("smart_city", num_tasks=16, seed=0)
    cands = [build_candidates(t) for t in tasks]
    plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
    cfg = SimulationConfig(horizon_s=20.0, warmup_s=2.0, seed=0)
    return tasks, plan, cluster, cfg


def _reports_equal(a, b) -> bool:
    """Bit-identity check between two simulation reports (the fast-path contract)."""
    return (
        a.records == b.records
        and a.utilizations == b.utilizations
        and a.discarded_warmup == b.discarded_warmup
        and a.counters == b.counters
    )


def measure_sim(rounds: int = 3) -> dict:
    """Simulator measurement in the gate's JSON-safe shape.

    Times both engines on the fixed workload (best of ``rounds``, same
    rationale as :func:`measure`), re-checks the fast-path ≡ event-loop
    report identity, and routes the deterministic work counters through a
    metrics-registry snapshot — the same ``sim.*`` names telemetry runs
    publish — so the gate exercises the export path.
    """
    from dataclasses import replace

    from repro.sim.runner import simulate_plan

    tasks, plan, cluster, cfg = _sim_workload()
    event_cfg = replace(cfg, fast_path=False)
    best_sim = best_event = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        fast_report = simulate_plan(tasks, plan, cluster, cfg)
        best_sim = min(best_sim, perf_counter() - t0)
        t0 = perf_counter()
        event_report = simulate_plan(tasks, plan, cluster, event_cfg)
        best_event = min(best_event, perf_counter() - t0)
    registry = MetricsRegistry()
    fast_report.counters.publish(registry)
    snapshot = registry.snapshot()
    return {
        "suite": "sim",
        "workload": "smart_city x16 tasks, 20s horizon, seed 0",
        "sim_s": best_sim,
        "event_s": best_event,
        "paths_equal": _reports_equal(fast_report, event_report),
        "counters": {
            name: snapshot[f"sim.{name}"]["value"] for name in SIM_GATED_COUNTERS
        },
    }


def check_sim(baseline: dict, current: dict, factor: float) -> int:
    """Gate the simulator: bit-identity, fast-path wall, exact counters."""
    failures = []
    status = "OK" if current["paths_equal"] else "FAIL"
    print(f"{status} fast-path report == event-loop report (fixed seed)")
    if not current["paths_equal"]:
        failures.append("paths_equal")
    ratio = current["sim_s"] / max(baseline["sim_s"], 1e-9)
    status = "OK" if ratio <= factor else "FAIL"
    print(
        f"{status} sim_s {current['sim_s']:.4f}s vs baseline "
        f"{baseline['sim_s']:.4f}s ({ratio:.2f}x, budget {factor:.2f}x)"
    )
    if ratio > factor:
        failures.append("sim_s")
    for name in SIM_GATED_COUNTERS:
        base = baseline["counters"].get(name)
        cur = current["counters"][name]
        if base is None:
            continue
        status = "OK" if cur == base else "FAIL"
        print(f"{status} sim.{name} {cur} vs baseline {base} (exact, drift {cur - base:+d})")
        if cur != base:
            failures.append(f"sim.{name}")
    if failures:
        print(f"sim perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("sim perf gate passed")
    return 0


def check_sim_overhead(baseline_path: Path, overhead: float) -> int:
    """Assert the telemetry-disabled event loop stays within ``overhead``.

    The event loop is the permanent fallback (telemetry, non-default
    features), so its telemetry-off wall time is gated the same way the
    solver's tracing-disabled path is.
    """
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run with --suite sim --update first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    current = measure_sim()
    budget = baseline["event_s"] * (1.0 + overhead)
    ratio = current["event_s"] / max(baseline["event_s"], 1e-9)
    status = "OK" if current["event_s"] <= budget else "FAIL"
    print(
        f"{status} telemetry-disabled event_s {current['event_s']:.4f}s vs "
        f"baseline {baseline['event_s']:.4f}s "
        f"({ratio:.3f}x, budget {1.0 + overhead:.2f}x)"
    )
    if current["event_s"] > budget:
        print("sim overhead gate FAILED", file=sys.stderr)
        return 1
    print("sim overhead gate passed")
    return 0


def run_sim_suite(args) -> int:
    """``--suite sim`` flow: overhead check, baseline update, or full gate."""
    if args.check_overhead:
        return check_sim_overhead(args.baseline, args.overhead)
    current = measure_sim()
    write_artifacts(args, "sim", current)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        if not current["paths_equal"]:
            print("refusing to write baseline: fast path != event loop", file=sys.stderr)
            return 1
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --suite sim --update first",
            file=sys.stderr,
        )
        return 1
    return check_sim(json.loads(args.baseline.read_text()), current, args.factor)


def _stream_workload():
    """The stream gate's workload: the sim workload stretched to 1M requests."""
    from dataclasses import replace

    tasks, plan, cluster, cfg = _sim_workload()
    rate = sum(t.arrival_rate for t in tasks)
    horizon = STREAM_TARGET_REQUESTS / rate
    return tasks, plan, cluster, replace(cfg, horizon_s=horizon)


def stream_probe() -> dict:
    """Run the 1M-request streaming sim and report wall + own peak RSS.

    Executed in a fresh interpreter (``--stream-probe``) so ``ru_maxrss``
    measures exactly this run: workload build + chunked sweep + bounded
    accumulators, with no earlier gate phases inflating the peak.
    """
    import resource
    from dataclasses import replace

    from repro.sim.runner import simulate_plan

    tasks, plan, cluster, cfg = _stream_workload()
    scfg = replace(cfg, streaming=True)
    t0 = perf_counter()
    report = simulate_plan(tasks, plan, cluster, scfg)
    wall = perf_counter() - t0
    return {
        "wall_s": wall,
        "requests": report.counters.requests,
        "req_per_s": report.counters.requests / wall,
        # linux ru_maxrss is KiB
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "counters": report.counters.as_dict(),
        "mean_latency_s": report.mean_latency_s,
        "miss_rate": report.miss_rate,
        "accuracy": report.accuracy,
        "goodput": report.goodput(),
    }


def _registry_snapshot(counters) -> dict:
    """Publish counters as ``sim.*`` and snapshot — the telemetry export path."""
    registry = MetricsRegistry()
    counters.publish(registry)
    return {name: m["value"] for name, m in registry.snapshot().items()}


def measure_stream(rounds: int = 2) -> dict:
    """Streaming measurement in the gate's JSON-safe shape.

    The 1M single-cell run happens in a subprocess (best wall of ``rounds``,
    max RSS across them); the record-backed reference and the sharded
    fan-out run in-process.
    """
    import json as _json
    import os
    import subprocess
    from dataclasses import replace

    from repro.sim.runner import run_cells, simulate_plan

    probes = []
    for _ in range(rounds):
        out = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), "--stream-probe"],
            capture_output=True, text=True, check=True,
        )
        probes.append(_json.loads(out.stdout))
    probe = min(probes, key=lambda p: p["wall_s"])
    peak_rss_kb = max(p["peak_rss_kb"] for p in probes)

    # streaming ≡ record-backed: same seed, chunk-size-∞ one-shot sweep
    tasks, plan, cluster, cfg = _stream_workload()
    t0 = perf_counter()
    record_backed = simulate_plan(tasks, plan, cluster, cfg)
    record_backed_s = perf_counter() - t0
    mean_rel = abs(probe["mean_latency_s"] - record_backed.mean_latency_s) / max(
        abs(record_backed.mean_latency_s), 1e-30
    )
    stream_matches_records = (
        probe["counters"] == record_backed.counters.as_dict()
        and probe["miss_rate"] == record_backed.miss_rate
        and probe["accuracy"] == record_backed.accuracy
        and probe["goodput"] == record_backed.goodput()
        and mean_rel <= 1e-9
    )

    # sharded fan-out: serial and pooled cells must merge identically
    stream_cfg = replace(cfg, streaming=True)
    t0 = perf_counter()
    serial = run_cells(tasks, plan, cluster, replace(stream_cfg, sim_workers=1), STREAM_CELLS)
    serial_cells_s = perf_counter() - t0
    cpus = len(os.sched_getaffinity(0))
    t0 = perf_counter()
    pooled = run_cells(
        tasks, plan, cluster,
        replace(stream_cfg, sim_workers=min(STREAM_CELLS, max(cpus, 2))),
        STREAM_CELLS,
    )
    pooled_cells_s = perf_counter() - t0
    shard_counters_equal = (
        serial.counters == pooled.counters
        and _registry_snapshot(serial.counters) == _registry_snapshot(pooled.counters)
        and serial.mean_latency_s == pooled.mean_latency_s
    )
    shard_s = min(serial_cells_s, pooled_cells_s)
    return {
        "suite": "stream",
        "workload": (
            f"smart_city x16 tasks, {STREAM_TARGET_REQUESTS} requests "
            f"({cfg.horizon_s:.0f}s horizon), seed 0"
        ),
        "requests": probe["requests"],
        "wall_s": probe["wall_s"],
        "req_per_s": probe["req_per_s"],
        "peak_rss_kb": peak_rss_kb,
        "counters": probe["counters"],
        "stream_matches_records": stream_matches_records,
        "record_backed_s": record_backed_s,
        "shard_counters_equal": shard_counters_equal,
        "serial_cells_s": serial_cells_s,
        "pooled_cells_s": pooled_cells_s,
        "speedup_vs_records": record_backed_s / shard_s,
        "cell_pool_ratio": serial_cells_s / pooled_cells_s,
        "cpus": cpus,
    }


def append_stream_trajectory(current: dict, path: Path = STREAM_TRAJECTORY) -> None:
    """Append this run's headline numbers to the BENCH_stream.json history."""
    from datetime import datetime, timezone

    entries = json.loads(path.read_text()) if path.exists() else []
    entries.append(
        {
            "at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "requests": current["requests"],
            "wall_s": round(current["wall_s"], 4),
            "req_per_s": round(current["req_per_s"], 1),
            "peak_rss_kb": current["peak_rss_kb"],
            "record_backed_s": round(current["record_backed_s"], 4),
            "speedup_vs_records": round(current["speedup_vs_records"], 2),
            "cell_pool_ratio": round(current["cell_pool_ratio"], 2),
            "cpus": current["cpus"],
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")


def check_stream(
    baseline: dict,
    current: dict,
    factor: float,
    rss_ceiling_mb: float,
    min_speedup: float,
) -> int:
    """Gate the streaming path: equivalence, counters, RSS, throughput, speedup."""
    failures = []

    status = "OK" if current["stream_matches_records"] else "FAIL"
    print(f"{status} streaming summary == record-backed summary (fixed seed)")
    if not current["stream_matches_records"]:
        failures.append("stream_matches_records")

    status = "OK" if current["shard_counters_equal"] else "FAIL"
    print(
        f"{status} {STREAM_CELLS}-cell merge: serial == pooled counters "
        "and sim.* registry snapshots"
    )
    if not current["shard_counters_equal"]:
        failures.append("shard_counters_equal")

    for name in SIM_GATED_COUNTERS:
        base = baseline["counters"].get(name)
        cur = current["counters"][name]
        if base is None:
            continue
        status = "OK" if cur == base else "FAIL"
        print(f"{status} sim.{name} {cur} vs baseline {base} (exact, drift {cur - base:+d})")
        if cur != base:
            failures.append(f"sim.{name}")

    floor = baseline["req_per_s"] / factor
    status = "OK" if current["req_per_s"] >= floor else "FAIL"
    print(
        f"{status} throughput {current['req_per_s'] / 1e3:.0f}k req/s vs baseline "
        f"{baseline['req_per_s'] / 1e3:.0f}k (floor {floor / 1e3:.0f}k, budget {factor:.2f}x)"
    )
    if current["req_per_s"] < floor:
        failures.append("req_per_s")

    ceiling_kb = rss_ceiling_mb * 1024
    status = "OK" if current["peak_rss_kb"] <= ceiling_kb else "FAIL"
    print(
        f"{status} peak RSS {current['peak_rss_kb'] / 1024:.0f} MiB "
        f"(ceiling {rss_ceiling_mb:.0f} MiB, bounded-memory contract)"
    )
    if current["peak_rss_kb"] > ceiling_kb:
        failures.append("peak_rss")

    speedup = current["speedup_vs_records"]
    status = "OK" if speedup >= min_speedup else "FAIL"
    print(
        f"{status} sharded streaming {speedup:.1f}x vs record-backed one-shot "
        f"(floor {min_speedup:.1f}x; record-backed {current['record_backed_s']:.2f}s)"
    )
    if speedup < min_speedup:
        failures.append("speedup_vs_records")
    note = "" if current["cpus"] >= STREAM_CELLS else (
        f" (only {current['cpus']} CPU(s): pool overhead dominates, informational)"
    )
    print(
        f"--   cell pool ratio {current['cell_pool_ratio']:.2f}x "
        f"(serial {current['serial_cells_s']:.2f}s / pooled "
        f"{current['pooled_cells_s']:.2f}s on {current['cpus']} CPUs){note}"
    )

    if failures:
        print(f"stream perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("stream perf gate passed")
    return 0


def run_stream_suite(args) -> int:
    """``--suite stream`` flow: baseline update or full gate (+ trajectory)."""
    if args.check_overhead:
        print("--check-overhead is not defined for the stream suite", file=sys.stderr)
        return 1
    current = measure_stream()
    write_artifacts(args, "stream", current)
    append_stream_trajectory(current)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        if not (current["stream_matches_records"] and current["shard_counters_equal"]):
            print(
                "refusing to write baseline: streaming != record-backed or "
                "shard merge drifted",
                file=sys.stderr,
            )
            return 1
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --suite stream --update first",
            file=sys.stderr,
        )
        return 1
    return check_stream(
        json.loads(args.baseline.read_text()),
        current,
        args.factor,
        args.rss_ceiling_mb,
        args.min_speedup,
    )


def _plans_equal(a, b) -> bool:
    """Bit-identity between two joint plans (the 1-shard degenerate contract)."""
    return (
        a.assignment == b.assignment
        and a.features == b.features
        and a.latencies == b.latencies
        and a.compute_shares == b.compute_shares
        and a.bandwidth_shares == b.bandwidth_shares
        and a.objective_value == b.objective_value
    )


def measure_shard() -> dict:
    """Shard-suite measurement in the gate's JSON-safe shape.

    Three blocks: the 1-shard ≡ centralized identity sweep over the fixed
    reference instances, the serial ≡ parallel shard fan-out check, and the
    timed centralized-vs-sharded comparison on the scale instance.
    """
    import dataclasses

    from repro.core.candidates import build_candidates
    from repro.core.coordinator import resolve_dirty, solve_sharded
    from repro.core.joint import JointOptimizer, JointSolverConfig
    from repro.workloads.scenarios import build_scenario

    identity = {}
    for scenario, n, m, seed in SHARD_REFERENCE_INSTANCES:
        cluster, tasks = build_scenario(
            scenario, num_tasks=n, num_servers=m, seed=seed
        )
        cands = [build_candidates(t) for t in tasks]
        cen = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=seed)
        one = solve_sharded(
            tasks, cluster, config=JointSolverConfig(shards=1),
            candidates=cands, seed=seed,
        )
        identity[f"{scenario}:{n}x{m}@{seed}"] = (
            _plans_equal(cen.plan, one.plan) and cen.history == one.history
        )

    # serial vs parallel shard fan-out on a small multi-shard instance
    cluster, tasks = build_scenario("smart_city", num_tasks=24, num_servers=4, seed=3)
    cands = [build_candidates(t) for t in tasks]
    serial = solve_sharded(
        tasks, cluster,
        config=JointSolverConfig(shards=2, migration_rounds=2),
        candidates=cands, seed=3,
    )
    pooled = solve_sharded(
        tasks, cluster,
        config=JointSolverConfig(shards=2, migration_rounds=2, restart_workers=4),
        candidates=cands, seed=3,
    )
    fanout_equal = (
        _plans_equal(serial.plan, pooled.plan)
        and serial.migration_history == pooled.migration_history
    )
    dense_fan = solve_sharded(
        tasks, cluster,
        config=JointSolverConfig(shards=2, migration_rounds=2, affinity="dense"),
        candidates=cands, seed=3,
    )
    affinity_equal = (
        _plans_equal(serial.plan, dense_fan.plan)
        and serial.migration_history == dense_fan.migration_history
    )

    # the scale instance: both arms timed best-of-2 (same min-of-N trick the
    # sim suite uses — the slow arm's ~25 s runs swing ~15% with scheduler
    # noise on a shared box, which is enough to flap a 5x speedup floor)
    sc = SHARD_SCALE_INSTANCE
    cluster, tasks = build_scenario(
        sc["scenario"], num_tasks=sc["tasks"], num_servers=sc["servers"],
        server_spread=sc["server_spread"], seed=sc["seed"],
    )
    tasks = [
        dataclasses.replace(t, arrival_rate=t.arrival_rate * sc["rate_scale"])
        for t in tasks
    ]
    cands = [build_candidates(t) for t in tasks]
    local_search = sc["tasks"] <= 32  # E9 precedent

    def _timed(cfg, rounds):
        best_s, result = float("inf"), None
        for _ in range(rounds):
            gc.collect()  # garbage from earlier suite stages skews the timing
            t0 = perf_counter()
            r = JointOptimizer(cluster, config=cfg).solve(
                tasks, candidates=cands, seed=sc["seed"]
            )
            best_s = min(best_s, perf_counter() - t0)
            result = r  # deterministic: every round returns the same plan
        return best_s, result

    # best-of-2 on the ~25 s centralized arm, best-of-3 on the ~5 s sharded
    # arm — the speedup floor rides on the ratio of the two minima
    centralized_s, cen = _timed(JointSolverConfig(local_search=local_search), 2)
    sharded_s, sha = _timed(
        JointSolverConfig(
            local_search=local_search,
            shards=sc["shards"],
            shard_by=sc["shard_by"],
            migration_rounds=sc["migration_rounds"],
        ),
        3,
    )
    obj_c = cen.plan.objective_value
    obj_s = sha.plan.objective_value

    # the 16k sparse-affinity instance: both affinity arms once each (single
    # rounds — the speedup floors sit far below the measured ratios, so one
    # sample per arm is noise-proof where a tight floor would not be), the
    # per-shard solve times subtracted out to expose the coordinator's own
    # overhead, then one incremental re-solve of a single drifted shard
    sc16 = SHARD_SCALE_16K
    cluster16, tasks16 = build_scenario(
        sc16["scenario"], num_tasks=sc16["tasks"], num_servers=sc16["servers"],
        server_spread=sc16["server_spread"], seed=sc16["seed"],
    )
    tasks16 = [
        dataclasses.replace(t, arrival_rate=t.arrival_rate * sc16["rate_scale"])
        for t in tasks16
    ]
    cands16 = [build_candidates(t) for t in tasks16]

    def _cfg16(affinity):
        return JointSolverConfig(
            shards=sc16["shards"],
            shard_by=sc16["shard_by"],
            migration_rounds=sc16["migration_rounds"],
            local_search=False,
            refine_thresholds=False,
            affinity=affinity,
        )

    def _timed16(cfg):
        gc.collect()
        t0 = perf_counter()
        r = solve_sharded(
            tasks16, cluster16, config=cfg, candidates=cands16, seed=sc16["seed"]
        )
        return perf_counter() - t0, r

    sparse16_s, sparse16 = _timed16(_cfg16("sparse"))
    dense16_s, dense16 = _timed16(_cfg16("dense"))
    sparse16_floor = sum(st.solve_s for st in sparse16.shard_stats)
    dense16_floor = sum(st.solve_s for st in dense16.shard_stats)
    plans_equal_16k = (
        _plans_equal(sparse16.plan, dense16.plan)
        and sparse16.migration_history == dense16.migration_history
    )
    gc.collect()
    t0 = perf_counter()
    resolve_dirty(
        tasks16, cluster16, sparse16, [3],
        config=_cfg16("sparse"), candidates=cands16, seed=sc16["seed"],
    )
    resolve16_s = perf_counter() - t0

    return {
        "suite": "shard",
        "workload": (
            f"{sc['scenario']} x{sc['tasks']} tasks / {sc['servers']} servers, "
            f"{sc['shards']} shards ({sc['shard_by']}), rate x{sc['rate_scale']}, "
            f"seed {sc['seed']}"
        ),
        "identity": identity,
        "fanout_equal": fanout_equal,
        "affinity_equal": affinity_equal,
        "centralized_s": centralized_s,
        "sharded_s": sharded_s,
        "speedup": centralized_s / max(sharded_s, 1e-9),
        "objective_centralized": obj_c,
        "objective_sharded": obj_s,
        "regression_pct": (obj_s / obj_c - 1.0) * 100.0 if obj_c > 0 else 0.0,
        "migration_history": list(sha.migration_history),
        "shard_solves": sha.perf.shard_solves,
        "migrations": sha.perf.migrations,
        "workload_16k": (
            f"{sc16['scenario']} x{sc16['tasks']} tasks / {sc16['servers']} "
            f"servers, {sc16['shards']} shards ({sc16['shard_by']}), "
            f"rate x{sc16['rate_scale']}, seed {sc16['seed']}"
        ),
        "sparse_16k_s": sparse16_s,
        "dense_16k_s": dense16_s,
        "sparse_floor_16k_s": sparse16_floor,
        "dense_floor_16k_s": dense16_floor,
        "plans_equal_16k": plans_equal_16k,
        "speedup_16k": dense16_s / max(sparse16_s, 1e-9),
        "coordinator_speedup_16k": (
            (dense16_s - dense16_floor) / max(sparse16_s - sparse16_floor, 1e-3)
        ),
        "index_build_16k_s": sparse16.perf.index_build_s,
        "resolve_dirty_16k_s": resolve16_s,
        "resolve_speedup_16k": sparse16_s / max(resolve16_s, 1e-9),
        "migration_history_16k": list(sparse16.migration_history),
    }


def append_solver_trajectory(current: dict, path: Path = SOLVER_TRAJECTORY) -> None:
    """Append this run's headline numbers to the BENCH_solver.json history."""
    import os
    from datetime import datetime, timezone

    entries = json.loads(path.read_text()) if path.exists() else []
    entries.append(
        {
            "at": datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
            "suite": "shard",
            "workload": current["workload"],
            "centralized_s": round(current["centralized_s"], 3),
            "sharded_s": round(current["sharded_s"], 3),
            "speedup": round(current["speedup"], 2),
            "regression_pct": round(current["regression_pct"], 3),
            "migrations": current["migrations"],
            "sparse_16k_s": round(current["sparse_16k_s"], 3),
            "dense_16k_s": round(current["dense_16k_s"], 3),
            "coordinator_speedup_16k": round(current["coordinator_speedup_16k"], 2),
            "resolve_dirty_16k_s": round(current["resolve_dirty_16k_s"], 3),
            "cpus": len(os.sched_getaffinity(0)),
        }
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(entries, indent=2) + "\n")


def check_shard(
    baseline: dict,
    current: dict,
    factor: float,
    min_speedup: float,
    max_regression_pct: float,
    min_speedup_16k: float,
    min_coordinator_speedup_16k: float,
    min_resolve_speedup: float,
) -> int:
    """Gate the sharded control plane: identity, fan-out, wall, speedup."""
    failures = []

    for key, ok in current["identity"].items():
        status = "OK" if ok else "FAIL"
        print(f"{status} 1-shard == centralized (bit-exact) on {key}")
        if not ok:
            failures.append(f"identity:{key}")

    status = "OK" if current["fanout_equal"] else "FAIL"
    print(f"{status} serial shard fan-out == parallel shard fan-out")
    if not current["fanout_equal"]:
        failures.append("fanout_equal")

    status = "OK" if current["affinity_equal"] else "FAIL"
    print(f"{status} sparse affinity == dense affinity on the fan-out instance")
    if not current["affinity_equal"]:
        failures.append("affinity_equal")

    ratio = current["sharded_s"] / max(baseline["sharded_s"], 1e-9)
    status = "OK" if ratio <= factor else "FAIL"
    print(
        f"{status} sharded_s {current['sharded_s']:.2f}s vs baseline "
        f"{baseline['sharded_s']:.2f}s ({ratio:.2f}x, budget {factor:.2f}x)"
    )
    if ratio > factor:
        failures.append("sharded_s")

    speedup = current["speedup"]
    status = "OK" if speedup >= min_speedup else "FAIL"
    print(
        f"{status} sharded {speedup:.2f}x faster than centralized "
        f"({current['centralized_s']:.2f}s -> {current['sharded_s']:.2f}s, "
        f"floor {min_speedup:.1f}x)"
    )
    if speedup < min_speedup:
        failures.append("speedup")

    regr = current["regression_pct"]
    status = "OK" if regr <= max_regression_pct else "FAIL"
    print(
        f"{status} objective regression {regr:+.2f}% vs centralized "
        f"(ceiling {max_regression_pct:.1f}%)"
    )
    if regr > max_regression_pct:
        failures.append("regression_pct")

    base_mig = baseline.get("migration_history")
    if base_mig is not None:
        cur_mig = current["migration_history"]
        status = "OK" if cur_mig == base_mig else "FAIL"
        print(
            f"{status} migration history {cur_mig} vs baseline {base_mig} "
            "(exact, fully seeded)"
        )
        if cur_mig != base_mig:
            failures.append("migration_history")

    # --- the 16k sparse-affinity block ---
    status = "OK" if current["plans_equal_16k"] else "FAIL"
    print(
        f"{status} sparse == dense (plan + migration history, bit-exact) "
        f"on {current['workload_16k']}"
    )
    if not current["plans_equal_16k"]:
        failures.append("plans_equal_16k")

    base_16k = baseline.get("sparse_16k_s")
    if base_16k is not None:
        ratio = current["sparse_16k_s"] / max(base_16k, 1e-9)
        status = "OK" if ratio <= factor else "FAIL"
        print(
            f"{status} sparse_16k_s {current['sparse_16k_s']:.2f}s vs baseline "
            f"{base_16k:.2f}s ({ratio:.2f}x, budget {factor:.2f}x)"
        )
        if ratio > factor:
            failures.append("sparse_16k_s")

    speedup = current["speedup_16k"]
    status = "OK" if speedup >= min_speedup_16k else "FAIL"
    print(
        f"{status} sparse {speedup:.2f}x faster than dense end-to-end "
        f"({current['dense_16k_s']:.2f}s -> {current['sparse_16k_s']:.2f}s, "
        f"floor {min_speedup_16k:.2f}x; per-shard descents are identical "
        "work in both arms)"
    )
    if speedup < min_speedup_16k:
        failures.append("speedup_16k")

    coord = current["coordinator_speedup_16k"]
    status = "OK" if coord >= min_coordinator_speedup_16k else "FAIL"
    print(
        f"{status} coordinator overhead {coord:.2f}x smaller with the sparse "
        f"index ({current['dense_16k_s'] - current['dense_floor_16k_s']:.2f}s "
        f"-> {current['sparse_16k_s'] - current['sparse_floor_16k_s']:.2f}s "
        f"above the {current['sparse_floor_16k_s']:.2f}s shard-solve floor, "
        f"floor {min_coordinator_speedup_16k:.1f}x)"
    )
    if coord < min_coordinator_speedup_16k:
        failures.append("coordinator_speedup_16k")

    resolve = current["resolve_speedup_16k"]
    status = "OK" if resolve >= min_resolve_speedup else "FAIL"
    print(
        f"{status} resolve_dirty(1 shard) {resolve:.1f}x faster than the full "
        f"sharded solve ({current['sparse_16k_s']:.2f}s -> "
        f"{current['resolve_dirty_16k_s']:.2f}s, floor {min_resolve_speedup:.1f}x)"
    )
    if resolve < min_resolve_speedup:
        failures.append("resolve_speedup_16k")

    base_mig16 = baseline.get("migration_history_16k")
    if base_mig16 is not None:
        cur_mig16 = current["migration_history_16k"]
        status = "OK" if cur_mig16 == base_mig16 else "FAIL"
        print(
            f"{status} 16k migration history {cur_mig16} vs baseline "
            f"{base_mig16} (exact, fully seeded)"
        )
        if cur_mig16 != base_mig16:
            failures.append("migration_history_16k")

    if failures:
        print(f"shard perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("shard perf gate passed")
    return 0


def run_shard_suite(args) -> int:
    """``--suite shard`` flow: baseline update or full gate (+ trajectory)."""
    if args.check_overhead:
        print("--check-overhead is not defined for the shard suite", file=sys.stderr)
        return 1
    current = measure_shard()
    write_artifacts(args, "shard", current)
    append_solver_trajectory(current)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        if not (
            all(current["identity"].values())
            and current["fanout_equal"]
            and current["affinity_equal"]
            and current["plans_equal_16k"]
        ):
            print(
                "refusing to write baseline: 1-shard identity, shard fan-out, "
                "or sparse==dense affinity contract broken",
                file=sys.stderr,
            )
            return 1
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --suite shard --update first",
            file=sys.stderr,
        )
        return 1
    return check_shard(
        json.loads(args.baseline.read_text()),
        current,
        args.factor,
        args.min_shard_speedup,
        args.max_regression_pct,
        args.min_shard_speedup_16k,
        args.min_coordinator_speedup_16k,
        args.min_resolve_speedup,
    )


def obs_probe(mode: str) -> dict:
    """Run the 1M-request streaming sim, optionally monitored, in isolation.

    Executed in a fresh interpreter (``--obs-probe plain|monitored``) so the
    two arms' peak RSS and wall time are each attributable to exactly one
    configuration.  The monitored arm carries 1 s tumbling windows and
    reports the windowed + SLO fingerprints the gate pins.
    """
    import resource
    from dataclasses import replace

    from repro.sim.runner import simulate_plan
    from repro.telemetry import WindowConfig, evaluate_slos

    tasks, plan, cluster, cfg = _stream_workload()
    scfg = replace(cfg, streaming=True)
    if mode == "monitored":
        # the ~17,000 s horizon needs a coarser layout than the interactive
        # default to stay inside the per-task histogram-cell guard: 5 s
        # windows x 20 ms bins ≈ 0.34M cells/task (~45 MiB over 16 tasks)
        scfg = replace(
            scfg, windows=WindowConfig(window_s=5.0, bin_s=2e-2, max_s=2.0)
        )
    t0 = perf_counter()
    report = simulate_plan(tasks, plan, cluster, scfg)
    wall = perf_counter() - t0
    out = {
        "mode": mode,
        "wall_s": wall,
        "requests": report.counters.requests,
        "req_per_s": report.counters.requests / wall,
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
    }
    if mode == "monitored":
        out["windowed_fingerprint"] = report.windowed.fingerprint()
        out["slo_fingerprint"] = evaluate_slos(report.windowed).fingerprint()
    return out


def _obs_identity() -> dict:
    """Event-loop ≡ fast-path ≡ streaming windowed/SLO identity (fixed seed)."""
    from dataclasses import replace

    from repro.sim.runner import simulate_plan
    from repro.telemetry import WindowConfig, evaluate_slos

    tasks, plan, cluster, cfg = _sim_workload()
    wcfg = WindowConfig(window_s=0.5)
    fast = simulate_plan(tasks, plan, cluster, replace(cfg, windows=wcfg))
    event = simulate_plan(
        tasks, plan, cluster, replace(cfg, fast_path=False, windows=wcfg)
    )
    stream = simulate_plan(
        tasks, plan, cluster,
        replace(cfg, streaming=True, chunk_size=4096, windows=wcfg),
    )
    fp = {k: r.windowed.fingerprint() for k, r in
          (("fast", fast), ("event", event), ("stream", stream))}
    slo = {k: evaluate_slos(r.windowed).fingerprint() for k, r in
           (("fast", fast), ("event", event), ("stream", stream))}
    return {
        "event_equals_fast": fp["event"] == fp["fast"] and slo["event"] == slo["fast"],
        "stream_equals_fast": fp["stream"] == fp["fast"] and slo["stream"] == slo["fast"],
        "windowed_fingerprint": fp["fast"],
        "slo_fingerprint": slo["fast"],
    }


def _openmetrics_wellformed() -> bool:
    """Sanity of the OpenMetrics exposition over a real sim's counters."""
    from repro.sim.runner import simulate_plan
    from repro.telemetry import openmetrics_text

    tasks, plan, cluster, cfg = _sim_workload()
    report = simulate_plan(tasks, plan, cluster, cfg)
    registry = MetricsRegistry()
    report.counters.publish(registry)
    text = openmetrics_text(registry)
    return (
        text.rstrip().endswith("# EOF")
        and "repro_sim_requests_total" in text
        and "# TYPE repro_sim_requests counter" in text
    )


def measure_obs(rounds: int = 4) -> dict:
    """Observability measurement in the gate's JSON-safe shape.

    The plain and monitored 1M-request arms each run ``rounds`` times in
    fresh subprocesses, **interleaved** (plain, monitored, plain, ...) and
    the overhead ratio is the best of the per-round pairwise ratios
    ``monitored_i / plain_i``: adjacent runs share machine state
    (CPU-frequency scaling, page cache, background load), so pairing
    cancels the slow drift that would bias comparing minima drawn from
    different moments.  Throughput is best-of-``rounds``; max RSS is taken
    over the monitored runs.  The cross-engine identity and OpenMetrics
    checks run in-process on the small fixed workload.
    """
    import json as _json
    import subprocess

    def _probe_once(mode: str) -> dict:
        out = subprocess.run(
            [sys.executable, str(Path(__file__).resolve()), "--obs-probe", mode],
            capture_output=True, text=True, check=True,
        )
        return _json.loads(out.stdout)

    plain, monitored = [], []
    for _ in range(rounds):
        plain.append(_probe_once("plain"))
        monitored.append(_probe_once("monitored"))
    best_pair = min(
        zip(plain, monitored),
        key=lambda pm: pm[1]["wall_s"] / max(pm[0]["wall_s"], 1e-9),
    )
    plain_wall = best_pair[0]["wall_s"]
    mon_best = min(monitored, key=lambda p: p["wall_s"])
    fingerprints = {(p["windowed_fingerprint"], p["slo_fingerprint"]) for p in monitored}
    identity = _obs_identity()
    return {
        "suite": "obs",
        "workload": (
            f"smart_city x16 tasks, {STREAM_TARGET_REQUESTS} requests, "
            "5s windows x 20ms bins, seed 0"
        ),
        "requests": mon_best["requests"],
        "plain_wall_s": plain_wall,
        "monitored_wall_s": best_pair[1]["wall_s"],
        "monitor_ratio": best_pair[1]["wall_s"] / max(plain_wall, 1e-9),
        "monitored_req_per_s": mon_best["req_per_s"],
        "monitored_peak_rss_kb": max(p["peak_rss_kb"] for p in monitored),
        "probe_fingerprints_stable": len(fingerprints) == 1,
        "windowed_fingerprint_1m": mon_best["windowed_fingerprint"],
        "slo_fingerprint_1m": mon_best["slo_fingerprint"],
        "event_equals_fast": identity["event_equals_fast"],
        "stream_equals_fast": identity["stream_equals_fast"],
        "windowed_fingerprint": identity["windowed_fingerprint"],
        "slo_fingerprint": identity["slo_fingerprint"],
        "openmetrics_ok": _openmetrics_wellformed(),
    }


def check_obs(
    baseline: dict,
    current: dict,
    factor: float,
    rss_ceiling_mb: float,
    max_monitor_overhead: float,
) -> int:
    """Gate the SLO plane: identity, overhead, memory, pinned fingerprints."""
    failures = []

    for key, label in (
        ("event_equals_fast", "event-loop == fast-path windowed/SLO fingerprints"),
        ("stream_equals_fast", "streaming == fast-path windowed/SLO fingerprints"),
        ("probe_fingerprints_stable", "1M monitored fingerprints stable across rounds"),
        ("openmetrics_ok", "OpenMetrics exposition well-formed (# EOF, _total)"),
    ):
        status = "OK" if current[key] else "FAIL"
        print(f"{status} {label}")
        if not current[key]:
            failures.append(key)

    for key in ("windowed_fingerprint", "slo_fingerprint",
                "windowed_fingerprint_1m", "slo_fingerprint_1m"):
        base = baseline.get(key)
        if base is None:
            continue
        ok = current[key] == base
        status = "OK" if ok else "FAIL"
        print(f"{status} {key} {current[key][:16]}… vs baseline {base[:16]}… (exact)")
        if not ok:
            failures.append(key)

    ratio = current["monitor_ratio"]
    status = "OK" if ratio <= max_monitor_overhead else "FAIL"
    print(
        f"{status} monitored 1M wall {current['monitored_wall_s']:.2f}s vs "
        f"plain {current['plain_wall_s']:.2f}s "
        f"({ratio:.3f}x, budget {max_monitor_overhead:.2f}x)"
    )
    if ratio > max_monitor_overhead:
        failures.append("monitor_ratio")

    ceiling_kb = rss_ceiling_mb * 1024
    status = "OK" if current["monitored_peak_rss_kb"] <= ceiling_kb else "FAIL"
    print(
        f"{status} monitored peak RSS {current['monitored_peak_rss_kb'] / 1024:.0f} MiB "
        f"(ceiling {rss_ceiling_mb:.0f} MiB)"
    )
    if current["monitored_peak_rss_kb"] > ceiling_kb:
        failures.append("peak_rss")

    floor = baseline["monitored_req_per_s"] / factor
    status = "OK" if current["monitored_req_per_s"] >= floor else "FAIL"
    print(
        f"{status} monitored throughput {current['monitored_req_per_s'] / 1e3:.0f}k "
        f"req/s vs baseline {baseline['monitored_req_per_s'] / 1e3:.0f}k "
        f"(floor {floor / 1e3:.0f}k, budget {factor:.2f}x)"
    )
    if current["monitored_req_per_s"] < floor:
        failures.append("monitored_req_per_s")

    if failures:
        print(f"obs perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("obs perf gate passed")
    return 0


def run_obs_suite(args) -> int:
    """``--suite obs`` flow: baseline update or full gate."""
    if args.check_overhead:
        print("--check-overhead is not defined for the obs suite", file=sys.stderr)
        return 1
    current = measure_obs()
    write_artifacts(args, "obs", current)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        if not (
            current["event_equals_fast"]
            and current["stream_equals_fast"]
            and current["probe_fingerprints_stable"]
            and current["openmetrics_ok"]
        ):
            print(
                "refusing to write baseline: windowed identity, fingerprint "
                "stability, or OpenMetrics sanity broken",
                file=sys.stderr,
            )
            return 1
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --suite obs --update first",
            file=sys.stderr,
        )
        return 1
    return check_obs(
        json.loads(args.baseline.read_text()),
        current,
        args.factor,
        args.rss_ceiling_mb,
        args.max_monitor_overhead,
    )


#: Fixed-seed instances for the risk-off (``buffer="none"``) identity sweep.
RISK_REFERENCE_INSTANCES = (
    ("smart_city", 6, 2, 0),
    ("industrial", 8, 2, 3),
    ("mobile_ar", 8, 3, 5),
)

#: Jitter sigma of the cross-engine equivalence check (mean-one log-normal).
RISK_JITTER_SIGMA = 0.2


def measure_risk(rounds: int = 5) -> dict:
    """Risk-suite measurement in the gate's JSON-safe shape.

    Four blocks: the ``buffer="none"`` ≡ risk-free identity sweep
    (centralized + sharded), the noise-free sim counter check against the
    sim baseline, the jitter-on cross-engine equivalence, and the paired
    interleaved overhead timing.  The E18 calibration run happens in
    :func:`run_risk_suite` so its table can land in the artifacts.
    """
    from dataclasses import replace

    from repro.core.candidates import build_candidates
    from repro.core.coordinator import solve_sharded
    from repro.core.joint import JointOptimizer, JointSolverConfig
    from repro.core.risk import RiskConfig
    from repro.sim.runner import simulate_plan
    from repro.workloads.scenarios import build_scenario

    none_cfg = JointSolverConfig(risk=RiskConfig(buffer="none"))
    identity = {}
    for scenario, n, m, seed in RISK_REFERENCE_INSTANCES:
        cluster, tasks = build_scenario(
            scenario, num_tasks=n, num_servers=m, seed=seed
        )
        cands = [build_candidates(t) for t in tasks]
        plain = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=seed)
        off = JointOptimizer(cluster, config=none_cfg).solve(
            tasks, candidates=cands, seed=seed
        )
        identity[f"{scenario}:{n}x{m}@{seed}"] = (
            _plans_equal(plain.plan, off.plan) and plain.history == off.history
        )

    # sharded arm of the same contract: buffer="none" through the coordinator
    cluster, tasks = build_scenario("smart_city", num_tasks=24, num_servers=4, seed=3)
    cands = [build_candidates(t) for t in tasks]
    sh_plain = solve_sharded(
        tasks, cluster,
        config=JointSolverConfig(shards=2, migration_rounds=2),
        candidates=cands, seed=3,
    )
    sh_off = solve_sharded(
        tasks, cluster,
        config=JointSolverConfig(
            shards=2, migration_rounds=2, risk=RiskConfig(buffer="none")
        ),
        candidates=cands, seed=3,
    )
    sharded_identity = (
        _plans_equal(sh_plain.plan, sh_off.plan)
        and sh_plain.migration_history == sh_off.migration_history
    )

    # noise-free sim counters vs the checked-in sim baseline: the jitter
    # plumbing may not perturb the deterministic replay
    tasks, plan, cluster, cfg = _sim_workload()
    report = simulate_plan(tasks, plan, cluster, cfg)
    snapshot = _registry_snapshot(report.counters)
    sim_counters = {
        name: snapshot[f"sim.{name}"] for name in SIM_GATED_COUNTERS
    }

    # jitter on: fast path ≡ event loop (records bit-exact), streaming ≡
    # one-shot (counters + scalar summary exact)
    jcfg = replace(cfg, service_noise=RISK_JITTER_SIGMA)
    fast = simulate_plan(tasks, plan, cluster, jcfg)
    event = simulate_plan(tasks, plan, cluster, replace(jcfg, fast_path=False))
    stream = simulate_plan(
        tasks, plan, cluster, replace(jcfg, streaming=True, chunk_size=4096)
    )
    jitter_paths_equal = _reports_equal(fast, event)
    jitter_stream_equal = (
        stream.counters == fast.counters
        and stream.mean_latency_s == fast.mean_latency_s
        and stream.miss_rate == fast.miss_rate
        and stream.accuracy == fast.accuracy
    )

    # paired interleaved overhead: risk-free vs buffer="none" solves share
    # adjacent machine state, so the best pairwise ratio cancels drift
    cluster, tasks = build_scenario("smart_city", num_tasks=16, seed=0)
    cands = [build_candidates(t) for t in tasks]
    best_ratio = float("inf")
    for _ in range(rounds):
        gc.collect()
        t0 = perf_counter()
        JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0)
        plain_s = perf_counter() - t0
        t0 = perf_counter()
        JointOptimizer(cluster, config=none_cfg).solve(
            tasks, candidates=cands, seed=0
        )
        off_s = perf_counter() - t0
        best_ratio = min(best_ratio, off_s / max(plain_s, 1e-9))

    return {
        "suite": "risk",
        "workload": (
            f"identity sweep + smart_city x16 sim workload, jitter "
            f"sigma={RISK_JITTER_SIGMA}, seed 0"
        ),
        "identity": identity,
        "sharded_identity": sharded_identity,
        "sim_counters": sim_counters,
        "jitter_paths_equal": jitter_paths_equal,
        "jitter_stream_equal": jitter_stream_equal,
        "overhead_ratio": best_ratio,
    }


def check_risk(
    current: dict,
    e18,
    sim_baseline: dict,
    max_risk_overhead: float,
) -> int:
    """Gate the chance-constrained path: identity, equivalence, calibration."""
    failures = []

    for key, ok in current["identity"].items():
        status = "OK" if ok else "FAIL"
        print(f'{status} buffer="none" == risk-free solve (bit-exact) on {key}')
        if not ok:
            failures.append(f"identity:{key}")

    status = "OK" if current["sharded_identity"] else "FAIL"
    print(f'{status} buffer="none" == risk-free solve through the 2-shard coordinator')
    if not current["sharded_identity"]:
        failures.append("sharded_identity")

    base_counters = (sim_baseline or {}).get("counters", {})
    for name in SIM_GATED_COUNTERS:
        base = base_counters.get(name)
        cur = current["sim_counters"][name]
        if base is None:
            print(f"--   sim.{name} {cur} (no sim baseline to pin against)")
            continue
        status = "OK" if cur == base else "FAIL"
        print(
            f"{status} noise-free sim.{name} {cur} vs sim baseline {base} "
            f"(exact, drift {cur - base:+d})"
        )
        if cur != base:
            failures.append(f"sim.{name}")

    for key, label in (
        ("jitter_paths_equal",
         f"jitter sigma={RISK_JITTER_SIGMA}: fast-path report == event-loop "
         "report (bit-exact)"),
        ("jitter_stream_equal",
         f"jitter sigma={RISK_JITTER_SIGMA}: streaming summary == one-shot "
         "summary (exact)"),
    ):
        status = "OK" if current[key] else "FAIL"
        print(f"{status} {label}")
        if not current[key]:
            failures.append(key)

    ratio = current["overhead_ratio"]
    status = "OK" if ratio <= max_risk_overhead else "FAIL"
    print(
        f'{status} buffer="none" solve overhead {ratio:.3f}x vs risk-free '
        f"(paired best-of-N, budget {max_risk_overhead:.2f}x)"
    )
    if ratio > max_risk_overhead:
        failures.append("overhead_ratio")

    cal = e18.extras["calibration_ok"]
    status = "OK" if cal else "FAIL"
    print(
        f"{status} E18 calibration: realized tail violation <= eps in every "
        f"(eps, load) cell"
    )
    if not cal:
        failures.append("calibration_ok")

    beats = e18.extras["beats_deterministic"]
    status = "OK" if beats else "FAIL"
    print(
        f"{status} E18: buffered arm beats the deterministic arm's violation "
        "rate on >=1 over-eps cell"
    )
    if not beats:
        failures.append("beats_deterministic")

    if failures:
        print(f"risk perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("risk perf gate passed")
    return 0


def run_risk_suite(args) -> int:
    """``--suite risk`` flow: contract gate (no wall-clock baseline of its own)."""
    from repro.experiments import e18_risk

    if args.check_overhead:
        print("--check-overhead is not defined for the risk suite", file=sys.stderr)
        return 1
    if args.update:
        print(
            "risk suite is contract-only (pins the sim baseline's counters); "
            "nothing to update — running the gate",
        )
    current = measure_risk()
    # reduced-horizon E18: the calibration claim at gate cost
    e18 = e18_risk.run(horizon_s=15.0, warmup_s=2.0)
    if getattr(args, "artifacts_dir", None):
        outdir = Path(args.artifacts_dir)
        outdir.mkdir(parents=True, exist_ok=True)
        (outdir / "risk_e18.txt").write_text(e18.format() + "\n")
    write_artifacts(args, "risk", current)
    sim_baseline = (
        json.loads(DEFAULT_SIM_BASELINE.read_text())
        if DEFAULT_SIM_BASELINE.exists()
        else None
    )
    return check_risk(current, e18, sim_baseline, args.max_risk_overhead)


def write_artifacts(args, suite: str, current: dict) -> None:
    """Write CI-uploadable artifacts when ``--artifacts-dir`` is given.

    Every suite drops its raw measurement JSON plus a solver phase-breakdown
    table (from a small traced solve — the same table ``repro trace``
    prints); the obs suite additionally writes a replayable ``metrics.jsonl``
    stream and an ``openmetrics.txt`` snapshot of a monitored run.
    """
    if not getattr(args, "artifacts_dir", None):
        return
    outdir = Path(args.artifacts_dir)
    outdir.mkdir(parents=True, exist_ok=True)
    (outdir / f"{suite}_measure.json").write_text(
        json.dumps(current, indent=2, default=str) + "\n"
    )

    from repro.analysis.tables import format_table
    from repro.core.joint import JointOptimizer
    from repro.telemetry.trace import get_tracer, phase_breakdown
    from repro.workloads.scenarios import build_scenario

    tracer = get_tracer().enable()
    try:
        cluster, tasks = build_scenario("smart_city", num_tasks=16, seed=0)
        JointOptimizer(cluster).solve(tasks, seed=0)
    finally:
        tracer.disable()
    spans = tracer.drain()
    rows = phase_breakdown(spans, root="solve")
    (outdir / f"{suite}_phase_breakdown.txt").write_text(
        format_table(
            ["phase", "count", "total_ms", "fraction"],
            [(name, count, total * 1e3, frac) for name, count, total, frac in rows],
            title="solve phase breakdown",
            float_fmt="{:.3f}",
        )
        + "\n"
    )

    if suite == "obs":
        from dataclasses import replace

        from repro.sim.runner import simulate_plan
        from repro.telemetry import (
            MetricsStreamWriter,
            WindowConfig,
            evaluate_slos,
            export_openmetrics,
        )

        tasks, plan, cluster, cfg = _sim_workload()
        report = simulate_plan(
            tasks, plan, cluster,
            replace(cfg, streaming=True, windows=WindowConfig(window_s=0.5)),
        )
        registry = MetricsRegistry()
        report.counters.publish(registry)
        slo = evaluate_slos(report.windowed)
        with MetricsStreamWriter(str(outdir / "metrics.jsonl")) as out:
            out.windowed_snapshot(cfg.horizon_s, report.windowed.snapshot())
            out.slo_report(cfg.horizon_s, slo.as_dict())
            out.registry_snapshot(cfg.horizon_s, registry)
        export_openmetrics(registry, str(outdir / "openmetrics.txt"))
    print(f"artifacts written to {outdir}")


def check_overhead(baseline_path: Path, overhead: float) -> int:
    """Assert a tracing-disabled solve stays within ``overhead`` of baseline."""
    from repro.telemetry.trace import get_tracer

    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run with --update first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    tracer = get_tracer()
    if tracer.enabled:  # defensive: the gate must measure the disabled path
        tracer.disable()
    current = measure()
    budget = baseline["solve_s"] * (1.0 + overhead)
    ratio = current["solve_s"] / max(baseline["solve_s"], 1e-9)
    status = "OK" if current["solve_s"] <= budget else "FAIL"
    print(
        f"{status} tracing-disabled solve_s {current['solve_s']:.4f}s vs "
        f"baseline {baseline['solve_s']:.4f}s "
        f"({ratio:.3f}x, budget {1.0 + overhead:.2f}x)"
    )
    if current["solve_s"] > budget:
        print("telemetry overhead gate FAILED", file=sys.stderr)
        return 1
    print("telemetry overhead gate passed")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--suite",
        choices=("solver", "sim", "stream", "shard", "obs", "risk"),
        default="solver",
        help=(
            "what to gate: the E9 joint solver (default), the simulator hot "
            "path, the million-request streaming path, the sharded control "
            "plane, the streaming SLO observability plane, or the "
            "chance-constrained risk path"
        ),
    )
    ap.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: the per-suite file under benchmarks/baselines/)",
    )
    ap.add_argument(
        "--factor",
        type=float,
        default=1.5,
        help="max allowed ratio vs. baseline (wall time and counters)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    ap.add_argument(
        "--check-overhead",
        action="store_true",
        help="assert tracing-disabled solve time within --overhead of baseline",
    )
    ap.add_argument(
        "--overhead",
        type=float,
        default=0.02,
        help="allowed fractional overhead for --check-overhead (default 2%%)",
    )
    ap.add_argument(
        "--rss-ceiling-mb",
        type=float,
        default=512.0,
        help="stream suite: max peak RSS of the 1M-request run (default 512 MiB)",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help=(
            "stream suite: min wall-clock speedup of the sharded streaming "
            "fan-out over the record-backed one-shot run (default 3x)"
        ),
    )
    ap.add_argument(
        "--min-shard-speedup",
        type=float,
        default=4.5,
        help=(
            "shard suite: min wall-clock speedup of the sharded solve over "
            "the centralized solve on the scale instance (default 4.5x, "
            "under the baseline's recorded ~5.7x to absorb timing noise)"
        ),
    )
    ap.add_argument(
        "--min-shard-speedup-16k",
        type=float,
        default=1.15,
        help=(
            "shard suite: min end-to-end speedup of the sparse affinity index "
            "over the dense reference on the 16k instance (default 1.15x, "
            "measured ~1.4x — the identical per-shard descents floor both "
            "arms and add ~10%% run-to-run noise to the ratio, so the floor "
            "sits low; the coordinator-overhead floor below is the "
            "structural gate)"
        ),
    )
    ap.add_argument(
        "--min-coordinator-speedup-16k",
        type=float,
        default=3.0,
        help=(
            "shard suite: min shrink factor of the coordinator's own overhead "
            "(wall minus summed per-shard solve times) under the sparse index "
            "on the 16k instance (default 3x, measured ~4.8x)"
        ),
    )
    ap.add_argument(
        "--min-resolve-speedup",
        type=float,
        default=10.0,
        help=(
            "shard suite: min speedup of an incremental resolve_dirty of one "
            "drifted shard over the full sharded solve on the 16k instance "
            "(default 10x, measured ~20x)"
        ),
    )
    ap.add_argument(
        "--max-regression-pct",
        type=float,
        default=5.0,
        help=(
            "shard suite: max objective regression of the sharded solve vs "
            "centralized, in percent (default 5%%)"
        ),
    )
    ap.add_argument(
        "--max-monitor-overhead",
        type=float,
        default=1.15,
        help=(
            "obs suite: max wall-time ratio of the monitored 1M-request "
            "streaming run over the un-monitored one (default 1.15x)"
        ),
    )
    ap.add_argument(
        "--max-risk-overhead",
        type=float,
        default=1.05,
        help=(
            "risk suite: max paired wall-time ratio of a buffer=\"none\" "
            "solve over a risk-free solve (default 1.05x, measured ~1.00x)"
        ),
    )
    ap.add_argument(
        "--artifacts-dir",
        type=Path,
        default=None,
        help=(
            "write CI-uploadable artifacts (measurement JSON, phase-breakdown "
            "table; obs suite also metrics.jsonl + openmetrics.txt) here"
        ),
    )
    ap.add_argument("--stream-probe", action="store_true", help=argparse.SUPPRESS)
    ap.add_argument(
        "--obs-probe", choices=("plain", "monitored"), default=None,
        help=argparse.SUPPRESS,
    )
    args = ap.parse_args(argv)
    if args.stream_probe:
        print(json.dumps(stream_probe()))
        return 0
    if args.obs_probe:
        print(json.dumps(obs_probe(args.obs_probe)))
        return 0
    if args.baseline is None:
        args.baseline = {
            "sim": DEFAULT_SIM_BASELINE,
            "stream": DEFAULT_STREAM_BASELINE,
            "shard": DEFAULT_SHARD_BASELINE,
            "obs": DEFAULT_OBS_BASELINE,
        }.get(args.suite, DEFAULT_BASELINE)

    if args.suite == "risk":
        return run_risk_suite(args)

    if args.suite == "obs":
        return run_obs_suite(args)

    if args.suite == "shard":
        return run_shard_suite(args)

    if args.suite == "stream":
        return run_stream_suite(args)

    if args.suite == "sim":
        return run_sim_suite(args)

    if args.check_overhead:
        return check_overhead(args.baseline, args.overhead)

    current = measure()
    write_artifacts(args, "solver", current)
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    if baseline.get("largest_instance") != current["largest_instance"]:
        print(
            f"baseline instance {baseline.get('largest_instance')} != "
            f"current {current['largest_instance']}; refresh with --update",
            file=sys.stderr,
        )
        return 1

    failures = []
    ratio = current["solve_s"] / max(baseline["solve_s"], 1e-9)
    status = "OK" if ratio <= args.factor else "FAIL"
    print(
        f"{status} solve_s {current['solve_s']:.3f}s vs baseline "
        f"{baseline['solve_s']:.3f}s ({ratio:.2f}x, budget {args.factor:.2f}x)"
    )
    if ratio > args.factor:
        failures.append("solve_s")
    for name in GATED_COUNTERS:
        base = baseline["counters"].get(name)
        cur = current["counters"][name]
        if not base:
            continue
        ratio = cur / base
        status = "OK" if ratio <= args.factor else "FAIL"
        print(
            f"{status} {name} {cur} vs baseline {base} "
            f"({ratio:.2f}x, budget {args.factor:.2f}x)"
        )
        if ratio > args.factor:
            failures.append(name)
    # full metrics-snapshot section: gate every baseline-known solver.* counter
    # (older baselines without the section skip this block gracefully)
    base_metrics = baseline.get("metrics", {})
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = current["metrics"].get(name)
        if not base or cur is None or name.removeprefix("solver.") in GATED_COUNTERS:
            continue
        ratio = cur / base
        status = "OK" if ratio <= args.factor else "FAIL"
        print(
            f"{status} {name} {cur} vs baseline {base} "
            f"({ratio:.2f}x, budget {args.factor:.2f}x)"
        )
        if ratio > args.factor:
            failures.append(name)
    if failures:
        print(f"perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
