#!/usr/bin/env python
"""Perf smoke gate for the joint solver (E9 scalability sweep).

Runs the E9 experiment and compares the largest instance against a
checked-in baseline:

- ``solve_s`` may not regress beyond ``--factor`` (default 1.5×) — a coarse
  wall-clock guard, deliberately loose to tolerate machine variance;
- the deterministic work counters (``allocate_calls``, ``latency_evals``,
  ``allocate_group_solves``) may not grow beyond the same factor — these are
  machine-independent, so they catch "same wall time, twice the work"
  regressions that a timing gate on a faster machine would miss.  The
  counters are read from a :class:`~repro.telemetry.metrics.MetricsRegistry`
  snapshot (``solver.*``) published by the solver's perf layer, so the gate
  exercises the same path ``repro trace`` exports.

``--check-overhead`` instead measures a tracing-**disabled** solve and
asserts its wall time stays within ``--overhead`` (default 2%) of the
baseline ``solve_s`` — guarding the telemetry instrumentation's disabled
fast path against creeping cost.  Refresh the baseline on the measuring
machine first (``--update``): a 2% band is only meaningful against numbers
from the same hardware.

Usage:

    PYTHONPATH=src python scripts/perf_gate.py                   # check
    PYTHONPATH=src python scripts/perf_gate.py --update          # rewrite baseline
    PYTHONPATH=src python scripts/perf_gate.py --check-overhead  # telemetry overhead

Exit code 0 = within budget, 1 = regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.experiments import e09_scalability
from repro.telemetry.metrics import MetricsRegistry

DEFAULT_BASELINE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "e09_solver_baseline.json"
)

#: Deterministic counters gated alongside wall time.
GATED_COUNTERS = ("allocate_calls", "allocate_group_solves", "latency_evals")


def measure(rounds: int = 3) -> dict:
    """E9 runs reduced to the gate's JSON-safe shape.

    Wall time is the best of ``rounds`` runs: the largest instance solves in
    ~0.1 s, where scheduler noise and cold per-process memo caches on the
    first run dwarf any real regression.  The work counters are deterministic,
    so they come from the last run, routed through a metrics-registry
    snapshot (the ``solver.*`` names ``repro trace`` exports).
    """
    best_solve = float("inf")
    for _ in range(rounds):
        result = e09_scalability.run()
        sizes = sorted(result.extras["solve_s"], key=lambda nm: nm[0] * nm[1])
        largest = sizes[-1]
        best_solve = min(best_solve, result.extras["solve_s"][largest])
    key = f"{largest[0]}x{largest[1]}"
    perf = result.extras["perf"][key]
    registry = MetricsRegistry()
    for name, value in perf.items():
        if name != "solve_s":
            registry.counter(f"solver.{name}").inc(int(value))
    snapshot = registry.snapshot()
    return {
        "experiment": "E9",
        "largest_instance": key,
        "solve_s": best_solve,
        "counters": {
            name: snapshot[f"solver.{name}"]["value"] for name in GATED_COUNTERS
        },
        "metrics": {name: m["value"] for name, m in sorted(snapshot.items())},
    }


def check_overhead(baseline_path: Path, overhead: float) -> int:
    """Assert a tracing-disabled solve stays within ``overhead`` of baseline."""
    from repro.telemetry.trace import get_tracer

    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run with --update first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    tracer = get_tracer()
    if tracer.enabled:  # defensive: the gate must measure the disabled path
        tracer.disable()
    current = measure()
    budget = baseline["solve_s"] * (1.0 + overhead)
    ratio = current["solve_s"] / max(baseline["solve_s"], 1e-9)
    status = "OK" if current["solve_s"] <= budget else "FAIL"
    print(
        f"{status} tracing-disabled solve_s {current['solve_s']:.4f}s vs "
        f"baseline {baseline['solve_s']:.4f}s "
        f"({ratio:.3f}x, budget {1.0 + overhead:.2f}x)"
    )
    if current["solve_s"] > budget:
        print("telemetry overhead gate FAILED", file=sys.stderr)
        return 1
    print("telemetry overhead gate passed")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    ap.add_argument(
        "--factor",
        type=float,
        default=1.5,
        help="max allowed ratio vs. baseline (wall time and counters)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    ap.add_argument(
        "--check-overhead",
        action="store_true",
        help="assert tracing-disabled solve time within --overhead of baseline",
    )
    ap.add_argument(
        "--overhead",
        type=float,
        default=0.02,
        help="allowed fractional overhead for --check-overhead (default 2%%)",
    )
    args = ap.parse_args(argv)

    if args.check_overhead:
        return check_overhead(args.baseline, args.overhead)

    current = measure()
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    if baseline.get("largest_instance") != current["largest_instance"]:
        print(
            f"baseline instance {baseline.get('largest_instance')} != "
            f"current {current['largest_instance']}; refresh with --update",
            file=sys.stderr,
        )
        return 1

    failures = []
    ratio = current["solve_s"] / max(baseline["solve_s"], 1e-9)
    status = "OK" if ratio <= args.factor else "FAIL"
    print(
        f"{status} solve_s {current['solve_s']:.3f}s vs baseline "
        f"{baseline['solve_s']:.3f}s ({ratio:.2f}x, budget {args.factor:.2f}x)"
    )
    if ratio > args.factor:
        failures.append("solve_s")
    for name in GATED_COUNTERS:
        base = baseline["counters"].get(name)
        cur = current["counters"][name]
        if not base:
            continue
        ratio = cur / base
        status = "OK" if ratio <= args.factor else "FAIL"
        print(
            f"{status} {name} {cur} vs baseline {base} "
            f"({ratio:.2f}x, budget {args.factor:.2f}x)"
        )
        if ratio > args.factor:
            failures.append(name)
    # full metrics-snapshot section: gate every baseline-known solver.* counter
    # (older baselines without the section skip this block gracefully)
    base_metrics = baseline.get("metrics", {})
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = current["metrics"].get(name)
        if not base or cur is None or name.removeprefix("solver.") in GATED_COUNTERS:
            continue
        ratio = cur / base
        status = "OK" if ratio <= args.factor else "FAIL"
        print(
            f"{status} {name} {cur} vs baseline {base} "
            f"({ratio:.2f}x, budget {args.factor:.2f}x)"
        )
        if ratio > args.factor:
            failures.append(name)
    if failures:
        print(f"perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
