#!/usr/bin/env python
"""Perf smoke gate for the joint solver (E9) and the simulator hot path.

``--suite solver`` (default) runs the E9 experiment and compares the largest
instance against a checked-in baseline:

- ``solve_s`` may not regress beyond ``--factor`` (default 1.5×) — a coarse
  wall-clock guard, deliberately loose to tolerate machine variance;
- the deterministic work counters (``allocate_calls``, ``latency_evals``,
  ``allocate_group_solves``) may not grow beyond the same factor — these are
  machine-independent, so they catch "same wall time, twice the work"
  regressions that a timing gate on a faster machine would miss.  The
  counters are read from a :class:`~repro.telemetry.metrics.MetricsRegistry`
  snapshot (``solver.*``) published by the solver's perf layer, so the gate
  exercises the same path ``repro trace`` exports.

``--suite sim`` measures the simulator on a fixed 16-task / 20 s workload:

- ``sim_s`` (the vectorized fast path) may not regress beyond ``--factor``;
- the deterministic ``sim.*`` work counters (requests, records,
  discarded_warmup, events) must match the baseline **exactly** — the
  workload is fully seeded, so any drift means the simulation itself
  changed, and the gate prints a per-counter diff;
- the fast-path and event-loop reports must be equal (the bit-identity
  contract), re-checked on every gate run.

``--check-overhead`` instead measures a tracing-**disabled** solve (or, for
``--suite sim``, a telemetry-disabled event-loop run) and asserts its wall
time stays within ``--overhead`` (default 2%) of the baseline — guarding
the instrumentation's disabled path against creeping cost.  Refresh the
baseline on the measuring machine first (``--update``): a 2% band is only
meaningful against numbers from the same hardware.

Usage:

    PYTHONPATH=src python scripts/perf_gate.py                   # solver check
    PYTHONPATH=src python scripts/perf_gate.py --update          # rewrite baseline
    PYTHONPATH=src python scripts/perf_gate.py --check-overhead  # telemetry overhead
    PYTHONPATH=src python scripts/perf_gate.py --suite sim       # simulator check

Exit code 0 = within budget, 1 = regression.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from time import perf_counter

from repro.experiments import e09_scalability
from repro.telemetry.metrics import MetricsRegistry

_BASELINE_DIR = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
DEFAULT_BASELINE = _BASELINE_DIR / "e09_solver_baseline.json"
DEFAULT_SIM_BASELINE = _BASELINE_DIR / "sim_baseline.json"

#: Deterministic solver counters gated alongside wall time (ratio-gated).
GATED_COUNTERS = ("allocate_calls", "allocate_group_solves", "latency_evals")

#: Deterministic simulator counters — gated by **exact** equality: the sim
#: workload is fully seeded, so any drift means simulation behavior changed.
SIM_GATED_COUNTERS = ("requests", "records", "discarded_warmup", "events")


def measure(rounds: int = 3) -> dict:
    """E9 runs reduced to the gate's JSON-safe shape.

    Wall time is the best of ``rounds`` runs: the largest instance solves in
    ~0.1 s, where scheduler noise and cold per-process memo caches on the
    first run dwarf any real regression.  The work counters are deterministic,
    so they come from the last run, routed through a metrics-registry
    snapshot (the ``solver.*`` names ``repro trace`` exports).
    """
    best_solve = float("inf")
    for _ in range(rounds):
        result = e09_scalability.run()
        sizes = sorted(result.extras["solve_s"], key=lambda nm: nm[0] * nm[1])
        largest = sizes[-1]
        best_solve = min(best_solve, result.extras["solve_s"][largest])
    key = f"{largest[0]}x{largest[1]}"
    perf = result.extras["perf"][key]
    registry = MetricsRegistry()
    for name, value in perf.items():
        if name != "solve_s":
            registry.counter(f"solver.{name}").inc(int(value))
    snapshot = registry.snapshot()
    return {
        "experiment": "E9",
        "largest_instance": key,
        "solve_s": best_solve,
        "counters": {
            name: snapshot[f"solver.{name}"]["value"] for name in GATED_COUNTERS
        },
        "metrics": {name: m["value"] for name, m in sorted(snapshot.items())},
    }


def _sim_workload():
    """The gate's fixed simulator workload: smart_city × 16 tasks, 20 s horizon.

    Built fresh each call (imports stay lazy so ``--suite solver`` keeps its
    original import footprint); everything downstream is seeded, so repeated
    builds produce the identical plan and identical simulation.
    """
    from repro.core.candidates import build_candidates
    from repro.core.joint import JointOptimizer
    from repro.sim import SimulationConfig
    from repro.workloads.scenarios import build_scenario

    cluster, tasks = build_scenario("smart_city", num_tasks=16, seed=0)
    cands = [build_candidates(t) for t in tasks]
    plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
    cfg = SimulationConfig(horizon_s=20.0, warmup_s=2.0, seed=0)
    return tasks, plan, cluster, cfg


def _reports_equal(a, b) -> bool:
    """Bit-identity check between two simulation reports (the fast-path contract)."""
    return (
        a.records == b.records
        and a.utilizations == b.utilizations
        and a.discarded_warmup == b.discarded_warmup
        and a.counters == b.counters
    )


def measure_sim(rounds: int = 3) -> dict:
    """Simulator measurement in the gate's JSON-safe shape.

    Times both engines on the fixed workload (best of ``rounds``, same
    rationale as :func:`measure`), re-checks the fast-path ≡ event-loop
    report identity, and routes the deterministic work counters through a
    metrics-registry snapshot — the same ``sim.*`` names telemetry runs
    publish — so the gate exercises the export path.
    """
    from dataclasses import replace

    from repro.sim.runner import simulate_plan

    tasks, plan, cluster, cfg = _sim_workload()
    event_cfg = replace(cfg, fast_path=False)
    best_sim = best_event = float("inf")
    for _ in range(rounds):
        t0 = perf_counter()
        fast_report = simulate_plan(tasks, plan, cluster, cfg)
        best_sim = min(best_sim, perf_counter() - t0)
        t0 = perf_counter()
        event_report = simulate_plan(tasks, plan, cluster, event_cfg)
        best_event = min(best_event, perf_counter() - t0)
    registry = MetricsRegistry()
    fast_report.counters.publish(registry)
    snapshot = registry.snapshot()
    return {
        "suite": "sim",
        "workload": "smart_city x16 tasks, 20s horizon, seed 0",
        "sim_s": best_sim,
        "event_s": best_event,
        "paths_equal": _reports_equal(fast_report, event_report),
        "counters": {
            name: snapshot[f"sim.{name}"]["value"] for name in SIM_GATED_COUNTERS
        },
    }


def check_sim(baseline: dict, current: dict, factor: float) -> int:
    """Gate the simulator: bit-identity, fast-path wall, exact counters."""
    failures = []
    status = "OK" if current["paths_equal"] else "FAIL"
    print(f"{status} fast-path report == event-loop report (fixed seed)")
    if not current["paths_equal"]:
        failures.append("paths_equal")
    ratio = current["sim_s"] / max(baseline["sim_s"], 1e-9)
    status = "OK" if ratio <= factor else "FAIL"
    print(
        f"{status} sim_s {current['sim_s']:.4f}s vs baseline "
        f"{baseline['sim_s']:.4f}s ({ratio:.2f}x, budget {factor:.2f}x)"
    )
    if ratio > factor:
        failures.append("sim_s")
    for name in SIM_GATED_COUNTERS:
        base = baseline["counters"].get(name)
        cur = current["counters"][name]
        if base is None:
            continue
        status = "OK" if cur == base else "FAIL"
        print(f"{status} sim.{name} {cur} vs baseline {base} (exact, drift {cur - base:+d})")
        if cur != base:
            failures.append(f"sim.{name}")
    if failures:
        print(f"sim perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("sim perf gate passed")
    return 0


def check_sim_overhead(baseline_path: Path, overhead: float) -> int:
    """Assert the telemetry-disabled event loop stays within ``overhead``.

    The event loop is the permanent fallback (telemetry, non-default
    features), so its telemetry-off wall time is gated the same way the
    solver's tracing-disabled path is.
    """
    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run with --suite sim --update first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    current = measure_sim()
    budget = baseline["event_s"] * (1.0 + overhead)
    ratio = current["event_s"] / max(baseline["event_s"], 1e-9)
    status = "OK" if current["event_s"] <= budget else "FAIL"
    print(
        f"{status} telemetry-disabled event_s {current['event_s']:.4f}s vs "
        f"baseline {baseline['event_s']:.4f}s "
        f"({ratio:.3f}x, budget {1.0 + overhead:.2f}x)"
    )
    if current["event_s"] > budget:
        print("sim overhead gate FAILED", file=sys.stderr)
        return 1
    print("sim overhead gate passed")
    return 0


def run_sim_suite(args) -> int:
    """``--suite sim`` flow: overhead check, baseline update, or full gate."""
    if args.check_overhead:
        return check_sim_overhead(args.baseline, args.overhead)
    current = measure_sim()
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        if not current["paths_equal"]:
            print("refusing to write baseline: fast path != event loop", file=sys.stderr)
            return 1
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0
    if not args.baseline.exists():
        print(
            f"no baseline at {args.baseline}; run with --suite sim --update first",
            file=sys.stderr,
        )
        return 1
    return check_sim(json.loads(args.baseline.read_text()), current, args.factor)


def check_overhead(baseline_path: Path, overhead: float) -> int:
    """Assert a tracing-disabled solve stays within ``overhead`` of baseline."""
    from repro.telemetry.trace import get_tracer

    if not baseline_path.exists():
        print(
            f"no baseline at {baseline_path}; run with --update first",
            file=sys.stderr,
        )
        return 1
    baseline = json.loads(baseline_path.read_text())
    tracer = get_tracer()
    if tracer.enabled:  # defensive: the gate must measure the disabled path
        tracer.disable()
    current = measure()
    budget = baseline["solve_s"] * (1.0 + overhead)
    ratio = current["solve_s"] / max(baseline["solve_s"], 1e-9)
    status = "OK" if current["solve_s"] <= budget else "FAIL"
    print(
        f"{status} tracing-disabled solve_s {current['solve_s']:.4f}s vs "
        f"baseline {baseline['solve_s']:.4f}s "
        f"({ratio:.3f}x, budget {1.0 + overhead:.2f}x)"
    )
    if current["solve_s"] > budget:
        print("telemetry overhead gate FAILED", file=sys.stderr)
        return 1
    print("telemetry overhead gate passed")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--suite",
        choices=("solver", "sim"),
        default="solver",
        help="what to gate: the E9 joint solver (default) or the simulator hot path",
    )
    ap.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="baseline JSON (default: the per-suite file under benchmarks/baselines/)",
    )
    ap.add_argument(
        "--factor",
        type=float,
        default=1.5,
        help="max allowed ratio vs. baseline (wall time and counters)",
    )
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    ap.add_argument(
        "--check-overhead",
        action="store_true",
        help="assert tracing-disabled solve time within --overhead of baseline",
    )
    ap.add_argument(
        "--overhead",
        type=float,
        default=0.02,
        help="allowed fractional overhead for --check-overhead (default 2%%)",
    )
    args = ap.parse_args(argv)
    if args.baseline is None:
        args.baseline = DEFAULT_SIM_BASELINE if args.suite == "sim" else DEFAULT_BASELINE

    if args.suite == "sim":
        return run_sim_suite(args)

    if args.check_overhead:
        return check_overhead(args.baseline, args.overhead)

    current = measure()
    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(current, indent=2) + "\n")
        print(f"baseline updated: {args.baseline}")
        print(json.dumps(current, indent=2))
        return 0

    if not args.baseline.exists():
        print(f"no baseline at {args.baseline}; run with --update first", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    if baseline.get("largest_instance") != current["largest_instance"]:
        print(
            f"baseline instance {baseline.get('largest_instance')} != "
            f"current {current['largest_instance']}; refresh with --update",
            file=sys.stderr,
        )
        return 1

    failures = []
    ratio = current["solve_s"] / max(baseline["solve_s"], 1e-9)
    status = "OK" if ratio <= args.factor else "FAIL"
    print(
        f"{status} solve_s {current['solve_s']:.3f}s vs baseline "
        f"{baseline['solve_s']:.3f}s ({ratio:.2f}x, budget {args.factor:.2f}x)"
    )
    if ratio > args.factor:
        failures.append("solve_s")
    for name in GATED_COUNTERS:
        base = baseline["counters"].get(name)
        cur = current["counters"][name]
        if not base:
            continue
        ratio = cur / base
        status = "OK" if ratio <= args.factor else "FAIL"
        print(
            f"{status} {name} {cur} vs baseline {base} "
            f"({ratio:.2f}x, budget {args.factor:.2f}x)"
        )
        if ratio > args.factor:
            failures.append(name)
    # full metrics-snapshot section: gate every baseline-known solver.* counter
    # (older baselines without the section skip this block gracefully)
    base_metrics = baseline.get("metrics", {})
    for name in sorted(base_metrics):
        base = base_metrics[name]
        cur = current["metrics"].get(name)
        if not base or cur is None or name.removeprefix("solver.") in GATED_COUNTERS:
            continue
        ratio = cur / base
        status = "OK" if ratio <= args.factor else "FAIL"
        print(
            f"{status} {name} {cur} vs baseline {base} "
            f"({ratio:.2f}x, budget {args.factor:.2f}x)"
        )
        if ratio > args.factor:
            failures.append(name)
    if failures:
        print(f"perf gate FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
