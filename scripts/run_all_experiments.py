#!/usr/bin/env python
"""Run every experiment (E1-E14) and dump the tables to stdout.

Used to regenerate the measured sections of EXPERIMENTS.md:

    python scripts/run_all_experiments.py > /tmp/experiments_raw.txt
"""

import time

from repro.experiments import EXPERIMENTS, run_experiment

#: Benchmark-sized knobs per experiment (defaults elsewhere).
KNOBS = {
    "E4": dict(loads=(2, 4, 8), horizon_s=15.0),
    "E5": dict(horizon_s=15.0),
    "E6": dict(num_scenarios=25),
    "E8": dict(num_instances=4),
    "E11": dict(window_s=8.0),
    "E12": dict(horizon_s=15.0),
    "E14": dict(horizon_s=40.0),
    "E15": dict(horizon_s=15.0),
    "A4": dict(loads=(8, 24), horizon_s=15.0),
}


def main() -> None:
    for eid in sorted(EXPERIMENTS, key=lambda e: (e[0], int(e[1:]))):
        t0 = time.time()
        result = run_experiment(eid, **KNOBS.get(eid, {}))
        took = time.time() - t0
        print(f"\n<<<{eid} ({took:.1f}s)>>>")
        print(result.format())


if __name__ == "__main__":
    main()
