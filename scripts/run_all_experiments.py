#!/usr/bin/env python
"""Run every experiment (E1-E14) and dump the tables to stdout.

Used to regenerate the measured sections of EXPERIMENTS.md:

    python scripts/run_all_experiments.py > /tmp/experiments_raw.txt

``--jobs N`` fans the experiments out over N worker processes
(``concurrent.futures``); results are printed in experiment order either
way, so the output is byte-identical to a serial run apart from timings.
A worker failure is reported with the failing experiment's ID and its full
child-process traceback, and the run exits non-zero after printing every
successful table.

``--telemetry-dir DIR`` additionally runs each experiment with tracing
enabled and writes ``DIR/<EID>.trace.json`` (Perfetto-loadable) and
``DIR/<EID>.metrics.jsonl`` per experiment.

``--sim-replications N`` runs every simulator-backed experiment (E4, E5,
E6, E11, E12, E14, E15, A4) with N independent replications per measured
point, fanned out over ``--sim-workers`` processes; reported statistics
pool all replications.  Defaults (1/1) reproduce single-run outputs.
"""

import argparse
import functools
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.experiments import EXPERIMENTS, run_experiment

#: Benchmark-sized knobs per experiment (defaults elsewhere).
KNOBS = {
    "E4": dict(loads=(2, 4, 8), horizon_s=15.0),
    "E5": dict(horizon_s=15.0),
    "E6": dict(num_scenarios=25),
    "E8": dict(num_instances=4),
    "E11": dict(window_s=8.0),
    "E12": dict(horizon_s=15.0),
    "E14": dict(horizon_s=40.0),
    "E15": dict(horizon_s=15.0),
    "A4": dict(loads=(8, 24), horizon_s=15.0),
}

#: Experiments that replay plans through the simulator and accept
#: ``replications`` / ``sim_workers`` knobs.
SIM_EXPERIMENTS = ("E4", "E5", "E6", "E11", "E12", "E14", "E15", "A4")


def _with_sim_knobs(eid: str, replications: int, sim_workers: int) -> dict:
    knobs = dict(KNOBS.get(eid, {}))
    if eid in SIM_EXPERIMENTS and replications > 1:
        knobs["replications"] = replications
        knobs["sim_workers"] = sim_workers
    return knobs


def _run_one(eid: str, telemetry_dir: str = "", sim_replications: int = 1,
             sim_workers: int = 1) -> tuple:
    """Worker entry point (module-level so it pickles for process pools).

    Returns ``(eid, seconds, formatted_table_or_None, error_or_None)`` — the
    error is the full traceback string so parent processes can report child
    failures with the experiment that caused them.
    """
    t0 = time.time()
    knobs = _with_sim_knobs(eid, sim_replications, sim_workers)
    try:
        if telemetry_dir:
            from repro.telemetry import (
                MetricsRegistry,
                export_perfetto,
                get_tracer,
            )

            out = Path(telemetry_dir)
            out.mkdir(parents=True, exist_ok=True)
            tracer = get_tracer().enable()
            try:
                result = run_experiment(eid, **knobs)
            finally:
                tracer.disable()
            spans = tracer.drain()
            export_perfetto(spans, str(out / f"{eid}.trace.json"))
            registry = MetricsRegistry()
            perf = getattr(result, "perf", None)
            if perf is not None:
                perf.publish(registry)
            registry.export_jsonl(str(out / f"{eid}.metrics.jsonl"))
        else:
            result = run_experiment(eid, **knobs)
    except Exception:
        return eid, time.time() - t0, None, traceback.format_exc()
    return eid, time.time() - t0, result.format(), None


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment fan-out (default: serial)",
    )
    ap.add_argument(
        "--telemetry-dir",
        default="",
        help="write per-experiment trace.json + metrics.jsonl into this directory",
    )
    ap.add_argument(
        "--sim-replications",
        type=int,
        default=1,
        help="simulator replications per measured point (sim-backed experiments)",
    )
    ap.add_argument(
        "--sim-workers",
        type=int,
        default=1,
        help="worker processes per experiment for replication fan-out",
    )
    args = ap.parse_args()
    if args.jobs < 1:
        ap.error("--jobs must be >= 1")
    if args.sim_replications < 1 or args.sim_workers < 1:
        ap.error("--sim-replications and --sim-workers must be >= 1")
    order = sorted(EXPERIMENTS, key=lambda e: (e[0], int(e[1:])))
    worker = functools.partial(
        _run_one,
        telemetry_dir=args.telemetry_dir,
        sim_replications=args.sim_replications,
        sim_workers=args.sim_workers,
    )
    if args.jobs == 1:
        outputs = map(worker, order)
    else:
        # processes, not threads: the experiments are CPU-bound Python
        pool = ProcessPoolExecutor(max_workers=args.jobs)
        outputs = pool.map(worker, order)
    failures = []
    for eid, took, table, error in outputs:
        if error is not None:
            failures.append((eid, error))
            continue
        print(f"\n<<<{eid} ({took:.1f}s)>>>")
        print(table)
    for eid, error in failures:
        print(f"\nexperiment {eid} FAILED:\n{error}", file=sys.stderr)
    if failures:
        ids = ", ".join(eid for eid, _ in failures)
        print(f"{len(failures)} experiment(s) failed: {ids}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
