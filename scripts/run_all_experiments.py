#!/usr/bin/env python
"""Run every experiment (E1-E14) and dump the tables to stdout.

Used to regenerate the measured sections of EXPERIMENTS.md:

    python scripts/run_all_experiments.py > /tmp/experiments_raw.txt

``--jobs N`` fans the experiments out over N worker processes
(``concurrent.futures``); results are printed in experiment order either
way, so the output is byte-identical to a serial run apart from timings.
"""

import argparse
import time
from concurrent.futures import ProcessPoolExecutor

from repro.experiments import EXPERIMENTS, run_experiment

#: Benchmark-sized knobs per experiment (defaults elsewhere).
KNOBS = {
    "E4": dict(loads=(2, 4, 8), horizon_s=15.0),
    "E5": dict(horizon_s=15.0),
    "E6": dict(num_scenarios=25),
    "E8": dict(num_instances=4),
    "E11": dict(window_s=8.0),
    "E12": dict(horizon_s=15.0),
    "E14": dict(horizon_s=40.0),
    "E15": dict(horizon_s=15.0),
    "A4": dict(loads=(8, 24), horizon_s=15.0),
}


def _run_one(eid: str) -> tuple:
    """Worker entry point (module-level so it pickles for process pools)."""
    t0 = time.time()
    result = run_experiment(eid, **KNOBS.get(eid, {}))
    took = time.time() - t0
    return eid, took, result.format()


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment fan-out (default: serial)",
    )
    args = ap.parse_args()
    if args.jobs < 1:
        ap.error("--jobs must be >= 1")
    order = sorted(EXPERIMENTS, key=lambda e: (e[0], int(e[1:])))
    if args.jobs == 1:
        outputs = map(_run_one, order)
    else:
        # processes, not threads: the experiments are CPU-bound Python
        pool = ProcessPoolExecutor(max_workers=args.jobs)
        outputs = pool.map(_run_one, order)
    for eid, took, table in outputs:
        print(f"\n<<<{eid} ({took:.1f}s)>>>")
        print(table)


if __name__ == "__main__":
    main()
