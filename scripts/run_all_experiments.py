#!/usr/bin/env python
"""Run every experiment (E1-E16) and dump the tables to stdout.

Used to regenerate the measured sections of EXPERIMENTS.md:

    python scripts/run_all_experiments.py > /tmp/experiments_raw.txt

``--jobs N`` fans the experiments out over N workers; results are printed
in experiment order either way, so the output is byte-identical to a
serial run apart from timings.

Failures are typed (:class:`ExperimentError`): a ``repro`` failure is a
deterministic domain error (bad config, infeasible instance) and is
reported immediately; ``timeout``, ``crash`` and ``unexpected`` failures
are treated as possibly transient and get exactly one retry before the
run gives up on that experiment.  The run exits non-zero after printing
every successful table and a per-failure report with the failing
experiment's ID, failure kind, and child traceback.

``--timeout S`` bounds each experiment's wall clock: the experiment runs
in its own child process and is terminated (then killed) when the budget
expires.  Without ``--timeout`` and with ``--jobs 1`` experiments run
in-process, exactly as before.

``--telemetry-dir DIR`` additionally runs each experiment with tracing
enabled and writes ``DIR/<EID>.trace.json`` (Perfetto-loadable) and
``DIR/<EID>.metrics.jsonl`` per experiment.

``--sim-replications N`` runs every simulator-backed experiment (E4, E5,
E6, E11, E12, E14, E15, E16, A4) with N independent replications per
measured point, fanned out over ``--sim-workers`` processes; reported
statistics pool all replications.  Defaults (1/1) reproduce single-run
outputs.
"""

import argparse
import dataclasses
import functools
import multiprocessing as mp
import sys
import time
import traceback
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional

from repro.errors import ReproError
from repro.experiments import EXPERIMENTS, run_experiment

#: Benchmark-sized knobs per experiment (defaults elsewhere).
KNOBS = {
    "E4": dict(loads=(2, 4, 8), horizon_s=15.0),
    "E5": dict(horizon_s=15.0),
    "E6": dict(num_scenarios=25),
    "E8": dict(num_instances=4),
    "E11": dict(window_s=8.0),
    "E12": dict(horizon_s=15.0),
    "E14": dict(horizon_s=40.0),
    "E15": dict(horizon_s=15.0),
    "E16": dict(horizon_s=15.0),
    "A4": dict(loads=(8, 24), horizon_s=15.0),
}

#: Experiments that replay plans through the simulator and accept
#: ``replications`` / ``sim_workers`` knobs.
SIM_EXPERIMENTS = ("E4", "E5", "E6", "E11", "E12", "E14", "E15", "E16", "A4")

#: Failure kinds that may be transient and earn one retry.  ``repro``
#: failures are deterministic domain errors: retrying cannot help.
RETRIABLE_KINDS = ("timeout", "crash", "unexpected")


@dataclasses.dataclass
class ExperimentError:
    """A typed experiment failure.

    ``kind`` is one of ``repro`` (deterministic domain error — a
    :class:`repro.errors.ReproError`), ``timeout`` (wall-clock budget
    exceeded, child terminated), ``crash`` (child died without
    reporting), or ``unexpected`` (any other exception).
    """

    eid: str
    kind: str
    message: str
    detail: str = ""

    def format(self) -> str:
        out = f"experiment {self.eid} FAILED [{self.kind}]: {self.message}"
        if self.detail:
            out += f"\n{self.detail}"
        return out


def _with_sim_knobs(eid: str, replications: int, sim_workers: int) -> dict:
    knobs = dict(KNOBS.get(eid, {}))
    if eid in SIM_EXPERIMENTS and replications > 1:
        knobs["replications"] = replications
        knobs["sim_workers"] = sim_workers
    return knobs


def _run_one(eid: str, telemetry_dir: str = "", sim_replications: int = 1,
             sim_workers: int = 1) -> tuple:
    """Run one experiment in the current process.

    Returns ``(eid, seconds, formatted_table_or_None, error_or_None)``
    where the error is an :class:`ExperimentError` carrying the failure
    kind and the full traceback.
    """
    t0 = time.time()
    knobs = _with_sim_knobs(eid, sim_replications, sim_workers)
    try:
        if telemetry_dir:
            from repro.telemetry import (
                MetricsRegistry,
                export_perfetto,
                get_tracer,
            )

            out = Path(telemetry_dir)
            out.mkdir(parents=True, exist_ok=True)
            tracer = get_tracer().enable()
            try:
                result = run_experiment(eid, **knobs)
            finally:
                tracer.disable()
            spans = tracer.drain()
            export_perfetto(spans, str(out / f"{eid}.trace.json"))
            registry = MetricsRegistry()
            perf = getattr(result, "perf", None)
            if perf is not None:
                perf.publish(registry)
            registry.export_jsonl(str(out / f"{eid}.metrics.jsonl"))
        else:
            result = run_experiment(eid, **knobs)
    except ReproError as e:
        err = ExperimentError(eid, "repro", str(e), traceback.format_exc())
        return eid, time.time() - t0, None, err
    except Exception as e:
        err = ExperimentError(
            eid, "unexpected", f"{type(e).__name__}: {e}", traceback.format_exc()
        )
        return eid, time.time() - t0, None, err
    return eid, time.time() - t0, result.format(), None


def _child_entry(conn, eid: str, **kwargs) -> None:
    """Child-process entry: run the experiment, ship the result back."""
    try:
        conn.send(_run_one(eid, **kwargs))
    finally:
        conn.close()


def _run_in_child(eid: str, timeout_s: float, **kwargs) -> tuple:
    """Run one experiment in a dedicated child process with a wall-clock cap.

    On timeout the child is terminated (killed if it ignores SIGTERM); a
    child that dies without reporting becomes a ``crash`` failure.
    """
    t0 = time.time()
    recv, send = mp.Pipe(duplex=False)
    proc = mp.Process(target=_child_entry, args=(send, eid), kwargs=kwargs)
    proc.start()
    send.close()
    budget = timeout_s if timeout_s > 0 else None
    if recv.poll(budget):
        try:
            result = recv.recv()
        except EOFError:
            result = None
        proc.join()
        if result is not None:
            return result
        err = ExperimentError(
            eid, "crash", f"child process died (exit code {proc.exitcode})"
        )
        return eid, time.time() - t0, None, err
    proc.terminate()
    proc.join(timeout=5.0)
    if proc.is_alive():
        proc.kill()
        proc.join()
    err = ExperimentError(eid, "timeout", f"exceeded {timeout_s:.0f}s wall clock")
    return eid, time.time() - t0, None, err


def _run_guarded(eid: str, timeout_s: float = 0.0, isolate: bool = False,
                 **kwargs) -> tuple:
    """Run one experiment with retry: one extra attempt for transient kinds."""
    for attempt in range(2):
        if isolate or timeout_s > 0:
            out = _run_in_child(eid, timeout_s, **kwargs)
        else:
            out = _run_one(eid, **kwargs)
        err = out[3]
        if err is None or err.kind not in RETRIABLE_KINDS or attempt == 1:
            return out
        print(
            f"experiment {eid} attempt 1 failed [{err.kind}]; retrying once",
            file=sys.stderr,
        )
    raise AssertionError("unreachable")  # pragma: no cover


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="concurrent experiments (each in its own child process)",
    )
    ap.add_argument(
        "--timeout",
        type=float,
        default=0.0,
        help="per-experiment wall-clock budget in seconds (0 = unlimited)",
    )
    ap.add_argument(
        "--telemetry-dir",
        default="",
        help="write per-experiment trace.json + metrics.jsonl into this directory",
    )
    ap.add_argument(
        "--sim-replications",
        type=int,
        default=1,
        help="simulator replications per measured point (sim-backed experiments)",
    )
    ap.add_argument(
        "--sim-workers",
        type=int,
        default=1,
        help="worker processes per experiment for replication fan-out",
    )
    args = ap.parse_args()
    if args.jobs < 1:
        ap.error("--jobs must be >= 1")
    if args.timeout < 0:
        ap.error("--timeout must be >= 0")
    if args.sim_replications < 1 or args.sim_workers < 1:
        ap.error("--sim-replications and --sim-workers must be >= 1")
    order = sorted(EXPERIMENTS, key=lambda e: (e[0], int(e[1:])))
    worker = functools.partial(
        _run_guarded,
        timeout_s=args.timeout,
        isolate=args.jobs > 1,
        telemetry_dir=args.telemetry_dir,
        sim_replications=args.sim_replications,
        sim_workers=args.sim_workers,
    )
    if args.jobs == 1:
        outputs = map(worker, order)
    else:
        # threads in the parent, one child process per experiment: the
        # children do the CPU work, and the parent can terminate a child
        # that blows its --timeout budget (a process pool cannot).
        pool = ThreadPoolExecutor(max_workers=args.jobs)
        outputs = pool.map(worker, order)
    failures = []
    for eid, took, table, error in outputs:
        if error is not None:
            failures.append(error)
            continue
        print(f"\n<<<{eid} ({took:.1f}s)>>>")
        print(table)
    for error in failures:
        print(f"\n{error.format()}", file=sys.stderr)
    if failures:
        by_kind = ", ".join(f"{e.eid} [{e.kind}]" for e in failures)
        print(f"{len(failures)} experiment(s) failed: {by_kind}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
