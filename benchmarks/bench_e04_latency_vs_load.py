"""E4 bench: simulated latency vs concurrent-task count."""

from conftest import run_and_report
from repro.experiments import e04_latency_vs_load


def test_e04_latency_vs_load(benchmark):
    r = run_and_report(benchmark, e04_latency_vs_load.run, loads=(2, 4, 8), horizon_s=15.0)
    measured = r.extras["measured"]
    top_load = max(measured["joint"])
    # at the highest load, joint's measured mean beats every baseline
    for name, by_load in measured.items():
        if name == "joint":
            continue
        assert measured["joint"][top_load]["mean"] <= by_load[top_load]["mean"] * 1.05, name
