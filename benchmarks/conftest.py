"""Shared benchmark plumbing.

Every bench target regenerates one experiment (E1–E14) from DESIGN.md's
per-experiment index and attaches the headline numbers to pytest-benchmark's
``extra_info`` so ``--benchmark-json`` output carries the reproduced
rows alongside the timings.  Run with ``-s`` to see the full tables.
"""

from __future__ import annotations

import pytest


def run_and_report(benchmark, run_fn, **kwargs):
    """Benchmark an experiment runner and print its table."""
    result = benchmark.pedantic(lambda: run_fn(**kwargs), rounds=1, iterations=1)
    print()
    print(result.format())
    benchmark.extra_info["exp_id"] = result.exp_id
    benchmark.extra_info["title"] = result.title
    benchmark.extra_info["notes"] = list(result.notes)
    return result
