"""A1 bench: candidate enumeration budget ablation."""

from conftest import run_and_report
from repro.experiments import a01_candidate_budget


def test_a01_candidate_budget(benchmark):
    r = run_and_report(benchmark, a01_candidate_budget.run)
    obj = r.extras["objective"]
    # quality saturates: fine buys (almost) nothing over default
    assert obj["fine"] >= obj["default"] * 0.98
    # default is no worse than coarse/minimal
    assert obj["default"] <= obj["coarse"] + 1e-12
    assert obj["default"] <= obj["minimal"] + 1e-12
