"""A6 bench: threshold-refinement ablation."""

from conftest import run_and_report
from repro.experiments import a06_refinement


def test_a06_refinement(benchmark):
    r = run_and_report(benchmark, a06_refinement.run)
    obj = r.extras["objective"]
    # refinement never hurts on any grid
    for label, _ in [("single", None), ("coarse", None), ("default", None)]:
        assert obj[(label, True)] <= obj[(label, False)] + 1e-12, label
    # coarse grid + refinement lands within 1% of the fine-grid solution
    assert obj[("single", True)] <= obj[("default", False)] * 1.01
