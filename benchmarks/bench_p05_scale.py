"""P5 scale bench: the control plane at 10k / 32k / 100k tasks.

The PR 9 scaling work (sparse affinity index, template-compressed homing,
incremental shard re-solve) targets exactly these sizes, so this file
documents the wall times the README/ROADMAP scaling section quotes:

- ``AffinityIndex`` build (sparse mode) — sub-O(tasks × servers);
- capacity-bounded homing through the shared index;
- a full ``solve_sharded`` (the per-shard descents dominate; the
  coordinator's own overhead is what the sparse index removed);
- ``resolve_dirty`` of a single drifted shard against that solve — the
  online controller's O(dirty) control action.

Every stage is timed once (``pedantic`` with one round): these are
second-scale runs, not microbenchmarks.
"""

import dataclasses

import pytest

from repro.core.candidates import build_candidates
from repro.core.coordinator import resolve_dirty, solve_sharded
from repro.core.joint import JointSolverConfig
from repro.core.sharding import AffinityIndex, home_tasks, partition_servers
from repro.workloads.scenarios import build_scenario

#: (tasks, servers, shards) — 100k rides on fewer servers so the instance
#: stays buildable in CI-class memory
SCALES = [(10_000, 128, 64), (32_768, 128, 128), (100_000, 64, 64)]


def _config(shards):
    return JointSolverConfig(
        shards=shards,
        shard_by="interleave",
        migration_rounds=3,
        local_search=False,
        refine_thresholds=False,
    )


@pytest.fixture(scope="module", params=SCALES, ids=["10k", "32k", "100k"])
def scale_instance(request):
    n, m, k = request.param
    cluster, tasks = build_scenario(
        "smart_city", num_tasks=n, num_servers=m, server_spread=4.0, seed=0
    )
    # light per-device load keeps the big instances feasible end to end
    tasks = [dataclasses.replace(t, arrival_rate=t.arrival_rate * 0.1) for t in tasks]
    cands = [build_candidates(t) for t in tasks]
    return {
        "n": n, "m": m, "k": k,
        "cluster": cluster, "tasks": tasks, "cands": cands,
    }


def _annotate(benchmark, inst, elapsed_attr=None):
    benchmark.extra_info["tasks"] = inst["n"]
    benchmark.extra_info["servers"] = inst["m"]
    benchmark.extra_info["shards"] = inst["k"]


def test_index_build(benchmark, scale_instance):
    inst = scale_instance

    def build():
        return AffinityIndex(
            inst["tasks"], inst["cands"], inst["cluster"], mode="sparse"
        )

    index = benchmark.pedantic(build, rounds=1, iterations=1)
    assert index.bounds.shape[1] == inst["m"]
    _annotate(benchmark, inst)
    benchmark.extra_info["templates"] = index.bounds.shape[0]


def test_homing(benchmark, scale_instance):
    inst = scale_instance
    shards = partition_servers(inst["m"], inst["k"], "interleave")
    index = AffinityIndex(inst["tasks"], inst["cands"], inst["cluster"], mode="sparse")

    homing = benchmark.pedantic(
        lambda: home_tasks(
            inst["tasks"], inst["cands"], inst["cluster"], shards, affinity=index
        ),
        rounds=1,
        iterations=1,
    )
    assert len(homing) == inst["n"]
    _annotate(benchmark, inst)


def test_sharded_solve(benchmark, scale_instance):
    inst = scale_instance
    cfg = _config(inst["k"])

    result = benchmark.pedantic(
        lambda: solve_sharded(
            inst["tasks"], inst["cluster"], config=cfg,
            candidates=inst["cands"], seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result.plan.assignment) == inst["n"]
    inst["prior"] = result  # reused by the resolve_dirty bench below
    _annotate(benchmark, inst)
    benchmark.extra_info["index_build_s"] = result.perf.index_build_s
    benchmark.extra_info["migrations"] = sum(result.migration_history or [0])


def test_resolve_dirty_one_shard(benchmark, scale_instance):
    inst = scale_instance
    prior = inst.get("prior") or solve_sharded(
        inst["tasks"], inst["cluster"], config=_config(inst["k"]),
        candidates=inst["cands"], seed=0,
    )

    result = benchmark.pedantic(
        lambda: resolve_dirty(
            inst["tasks"], inst["cluster"], prior, [0],
            config=_config(inst["k"]), candidates=inst["cands"], seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    assert len(result.plan.assignment) == inst["n"]
    _annotate(benchmark, inst)
    benchmark.extra_info["resolve_dirty_s"] = result.perf.resolve_dirty_s
