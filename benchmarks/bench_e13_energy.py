"""E13 bench: device energy per inference."""

from conftest import run_and_report
from repro.experiments import e13_energy


def test_e13_energy(benchmark):
    r = run_and_report(benchmark, e13_energy.run)
    e = r.extras["energy"]
    total = lambda v: v["compute_mj"] + v["tx_mj"] + v["idle_mj"]
    # offloading trades local compute joules for radio/idle joules...
    assert e["joint"]["compute_mj"] <= e["device_only"]["compute_mj"]
    # ...and the joint plan beats both static extremes on BOTH axes
    for extreme in ("device_only", "edge_only"):
        assert total(e["joint"]) <= total(e[extreme]) + 1e-9, extreme
        assert e["joint"]["latency"] <= e[extreme]["latency"] + 1e-9, extreme
