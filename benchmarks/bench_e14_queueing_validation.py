"""E14 bench: analytic queueing vs simulation."""

import numpy as np

from conftest import run_and_report
from repro.experiments import e14_queueing_validation


def test_e14_queueing_validation(benchmark):
    r = run_and_report(benchmark, e14_queueing_validation.run, horizon_s=40.0)
    errors = np.abs(np.array(r.extras["errors"]))
    # per-stage M/G/1 tracks simulation closely away from saturation
    assert np.median(errors) < 0.15
