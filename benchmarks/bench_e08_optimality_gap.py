"""E8 bench: optimality gap vs exhaustive search."""

from conftest import run_and_report
from repro.experiments import e08_optimality_gap


def test_e08_optimality_gap(benchmark):
    r = run_and_report(benchmark, e08_optimality_gap.run, num_instances=4)
    assert max(r.extras["gaps_bcd"]) < 0.05  # BCD within 5% of optimal
    assert max(r.extras["gaps_br"]) < 0.10  # distributed within 10%
