"""E3 bench: accuracy-latency frontier table."""

import math

from conftest import run_and_report
from repro.experiments import e03_surgery_frontier


def test_e03_surgery_frontier(benchmark):
    r = run_and_report(benchmark, e03_surgery_frontier.run)
    # latency is non-decreasing in the accuracy floor for every model
    for model, frontier in r.extras["frontier"].items():
        floors = sorted(frontier)
        lats = [frontier[f] for f in floors]
        finite = [l for l in lats if math.isfinite(l)]
        assert all(b >= a - 1e-9 for a, b in zip(finite, finite[1:])), model
