"""A5 bench: fairness/efficiency exponent ablation."""

from conftest import run_and_report
from repro.experiments import a05_fairness


def test_a05_fairness(benchmark):
    r = run_and_report(benchmark, a05_fairness.run)
    mean = r.extras["mean_request"]
    jain = r.extras["jain"]
    # the KKT optimum: 0.5 minimizes the rate-weighted per-request mean
    assert min(mean, key=mean.get) == 0.5
    # fairness is monotone decreasing in the exponent
    betas = sorted(jain)
    vals = [jain[b] for b in betas]
    assert all(b <= a + 1e-12 for a, b in zip(vals, vals[1:]))
