"""P1 micro-bench: the solver hot-path primitives in isolation.

E9 times whole solves; this file times the two paths the performance layer
targets so regressions are attributable:

- ``build_candidates`` on a warm cache — the memoized pipeline should make
  repeat builds (same model / grid / floor) effectively free;
- one ``_local_search`` sweep — trial moves re-solve shares incrementally
  and re-evaluate only the tasks in the touched server/link groups.

The sweep bench drives the optimizer's internals directly (same setup as
``_descend``'s bootstrap) so it measures exactly one sweep, not a solve.
"""

import numpy as np

from repro.core.allocation import Allocation, assign_servers
from repro.core.candidates import (
    build_candidates,
    candidate_cache_stats,
)
from repro.core.joint import JointOptimizer, JointSolverConfig, _SolveContext
from repro.profiling.counters import PerfCounters
from repro.workloads.scenarios import build_scenario


def _scenario(n_tasks=16, n_servers=4):
    return build_scenario(
        "smart_city",
        num_tasks=n_tasks,
        num_servers=n_servers,
        server_spread=4.0,
        seed=0,
    )


def test_build_candidates_cache_hit(benchmark):
    cluster, tasks = _scenario()
    for t in tasks:
        build_candidates(t)  # warm the pipeline cache
    before = candidate_cache_stats()
    benchmark(lambda: [build_candidates(t) for t in tasks])
    after = candidate_cache_stats()
    assert after.hits > before.hits
    assert after.misses == before.misses  # every timed build was a hit
    benchmark.extra_info["cache_hits"] = after.hits - before.hits


def test_local_search_sweep(benchmark):
    cluster, tasks = _scenario()
    cands = [build_candidates(t) for t in tasks]
    opt = JointOptimizer(cluster, config=JointSolverConfig())
    n = len(tasks)
    setup_counters = PerfCounters()
    ctx = _SolveContext(cluster, opt.latency_model, opt.objective, tasks, cands)
    assignment = assign_servers(tasks, cands, cluster, opt.latency_model)
    boot = Allocation(list(assignment), np.ones(n), np.ones(n))
    plan_idx = opt._surgery_step(tasks, cands, boot, ctx, setup_counters)
    alloc = ctx.allocator.solve(plan_idx, assignment, setup_counters)
    obj = opt._objective(tasks, cands, plan_idx, alloc, setup_counters)

    counters = PerfCounters()

    def sweep():
        return opt._local_search(
            tasks, cands, list(plan_idx), alloc, obj, ctx, counters
        )

    new_idx, new_alloc, new_obj = benchmark(sweep)
    assert new_obj <= obj
    assert counters.allocate_calls > 0
    # incremental updates: far fewer group solves than a from-scratch solve
    # per trial (which would pay every populated server + link group)
    assert counters.allocate_group_solves <= counters.allocate_calls * 4
    benchmark.extra_info["perf"] = counters.as_dict()
