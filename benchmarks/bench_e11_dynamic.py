"""E11 bench: dynamic-bandwidth adaptation."""

import numpy as np

from conftest import run_and_report
from repro.experiments import e11_dynamic


def test_e11_dynamic(benchmark):
    r = run_and_report(benchmark, e11_dynamic.run, window_s=8.0)
    s = r.extras["series"]
    static = np.array(s["static"])
    adaptive = np.array(s["adaptive"])
    # re-optimization never hurts materially and helps in at least one window
    assert np.all(adaptive <= static * 1.10)
    assert np.any(adaptive < static * 0.98)
