"""A3 bench: dominance pruning allocation-safety ablation."""

from conftest import run_and_report
from repro.experiments import a03_pruning


def test_a03_pruning(benchmark):
    r = run_and_report(benchmark, a03_pruning.run)
    assert all(r.extras["match"])  # identical objectives — pruning is safe
    assert all(red > 2.0 for red in r.extras["reduction"])  # and worthwhile
