"""E7 bench: solver convergence trajectories."""

import numpy as np

from conftest import run_and_report
from repro.experiments import e07_convergence


def test_e07_convergence(benchmark):
    r = run_and_report(benchmark, e07_convergence.run)
    hist = [h for h in r.extras["bcd_history"] if np.isfinite(h)]
    assert all(b <= a + 1e-12 for a, b in zip(hist, hist[1:]))  # monotone
    assert r.extras["bcd_converged"]
    assert r.extras["br_converged"]
    assert abs(r.extras["gap"]) < 0.15  # distributed within 15% of centralized
