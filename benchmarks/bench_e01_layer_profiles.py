"""E1 bench: regenerate the per-layer profile motivation figure."""

from conftest import run_and_report
from repro.experiments import e01_layer_profiles


def test_e01_layer_profiles(benchmark):
    r = run_and_report(benchmark, e01_layer_profiles.run)
    # shape check: a GPU server is orders of magnitude faster than a Pi
    pi = next(row for row in r.rows if row[1] == "raspberry_pi4" and row[0] == "vgg16")
    gpu = next(row for row in r.rows if row[1] == "edge_gpu" and row[0] == "vgg16")
    assert pi[2] > 100 * gpu[2]
