"""A2 bench: quantization-knob ablation across bandwidths."""

import numpy as np

from conftest import run_and_report
from repro.experiments import a02_quantization


def test_a02_quantization(benchmark):
    r = run_and_report(benchmark, a02_quantization.run)
    fp32, quant = r.extras["fp32"], r.extras["quant"]
    for bw in quant:
        # the knob never hurts (fp32 remains in the enlarged search space)
        assert quant[bw] <= fp32[bw] * 1.001 or not np.isfinite(fp32[bw])
    # and wins somewhere
    finite = [bw for bw in quant if np.isfinite(quant[bw]) and np.isfinite(fp32[bw])]
    assert any(fp32[bw] / quant[bw] > 1.5 for bw in finite)
