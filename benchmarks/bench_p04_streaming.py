"""P4 micro-bench: the million-request streaming path.

P2 times the record-backed fast path; this file times the chunked
*streaming* sweep at scales where record-backed simulation stops being
practical, so the PR's capacity claims are attributable:

- one million requests, single cell, ``streaming=True`` — headline
  requests/sec at bounded memory (the report keeps histograms and running
  sums, no per-request records);
- streaming vs. record-backed on the same seed at a record-feasible size —
  asserts the streaming-equivalence contract (exact counters and
  integer-derived scalars, mean latency to 1e-9 relative) alongside the
  speedup;
- a 4-cell sharded fan-out via :func:`repro.sim.run_cells` — asserts the
  merged counters conserve and the scalar summary matches a single-cell
  streaming run of the same *pooled* traffic only in shape (cells thin the
  Poisson arrivals, so totals differ; conservation and determinism are the
  invariants).

Every bench asserts its correctness contract alongside the timing, so a
"fast but wrong" regression fails before any timing threshold does.
"""

from dataclasses import replace
from time import perf_counter

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.sim import SimulationConfig, run_cells
from repro.sim.runner import simulate_plan
from repro.workloads.scenarios import build_scenario

#: Offered load of the headline bench; horizon is derived from the
#: workload's aggregate arrival rate.
TARGET_REQUESTS = 1_000_000
#: Record-feasible size for the equivalence/speedup bench.
EQUIV_REQUESTS = 200_000

_WORKLOAD = {}


def _workload():
    """smart_city x 16 tasks + its joint plan, built once per session."""
    if not _WORKLOAD:
        cluster, tasks = build_scenario("smart_city", num_tasks=16, seed=0)
        cands = [build_candidates(t) for t in tasks]
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
        rate = sum(t.arrival_rate for t in tasks)
        _WORKLOAD["built"] = (tasks, plan, cluster, rate)
    return _WORKLOAD["built"]


def _config(requests: int, rate: float, **overrides) -> SimulationConfig:
    return SimulationConfig(
        horizon_s=requests / rate, warmup_s=2.0, seed=0, **overrides
    )


def test_streaming_million_requests(benchmark):
    """1M requests through the chunked sweep: requests/sec headline."""
    tasks, plan, cluster, rate = _workload()
    cfg = _config(TARGET_REQUESTS, rate, streaming=True)

    t0 = perf_counter()
    report = benchmark.pedantic(
        lambda: simulate_plan(tasks, plan, cluster, cfg), rounds=1, iterations=1
    )
    wall = perf_counter() - t0

    assert report.streaming and not report.records
    assert report.counters.conserved()
    benchmark.extra_info["requests"] = report.counters.requests
    benchmark.extra_info["req_per_s"] = report.counters.requests / wall
    benchmark.extra_info["counters"] = report.counters.as_dict()


def test_streaming_vs_record_backed(benchmark):
    """Streaming wins wall-clock while matching the record-backed summary."""
    tasks, plan, cluster, rate = _workload()
    record_cfg = _config(EQUIV_REQUESTS, rate)
    stream_cfg = replace(record_cfg, streaming=True)

    t0 = perf_counter()
    record_report = simulate_plan(tasks, plan, cluster, record_cfg)
    record_s = perf_counter() - t0

    t0 = perf_counter()
    stream_report = benchmark.pedantic(
        lambda: simulate_plan(tasks, plan, cluster, stream_cfg),
        rounds=1,
        iterations=1,
    )
    stream_s = perf_counter() - t0

    assert stream_report.counters == record_report.counters
    assert stream_report.miss_rate == record_report.miss_rate
    assert stream_report.accuracy == record_report.accuracy
    assert stream_report.goodput() == record_report.goodput()
    assert abs(stream_report.mean_latency_s - record_report.mean_latency_s) <= (
        1e-9 * abs(record_report.mean_latency_s)
    )
    assert stream_s < record_s, "streaming must beat record-backed wall-clock"
    benchmark.extra_info["record_backed_s"] = record_s
    benchmark.extra_info["speedup_vs_records"] = record_s / stream_s


def test_sharded_cells_merge(benchmark):
    """4-cell fan-out merges deterministically with conserved counters."""
    tasks, plan, cluster, rate = _workload()
    cfg = _config(EQUIV_REQUESTS, rate, streaming=True)

    merged = benchmark.pedantic(
        lambda: run_cells(tasks, plan, cluster, cfg, 4), rounds=1, iterations=1
    )
    again = run_cells(tasks, plan, cluster, cfg, 4)

    assert merged.streaming
    assert merged.counters.conserved()
    assert merged.counters == again.counters
    assert merged.mean_latency_s == again.mean_latency_s
    benchmark.extra_info["requests"] = merged.counters.requests
    benchmark.extra_info["counters"] = merged.counters.as_dict()
