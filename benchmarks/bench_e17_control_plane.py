"""E17 bench: sharded control plane vs centralized vs best response.

The experiment's default sizes (1k–4k tasks) are gate territory, not bench
territory — here a scaled-down instance keeps the bench seconds-fast while
still exercising every arm (shard solves, migration, best response).
"""

from conftest import run_and_report
from repro.experiments import e17_control_plane

#: One small instance: 64 tasks on 8 servers split into 4 shards.
BENCH_SIZES = ((64, 8, 4),)


def test_e17_control_plane(benchmark):
    r = run_and_report(benchmark, e17_control_plane.run, sizes=BENCH_SIZES)
    arms = {row[3] for row in r.rows}
    assert arms == {"centralized", "sharded", "decentralized"}
    # all three arms produced finite objectives on the bench instance
    for row in r.rows:
        assert row[5] > 0
    assert "64x8" in r.extras["speedup"]
