"""A4 bench: congestion-aware vs congestion-blind solving."""

from conftest import run_and_report
from repro.experiments import a04_queue_model


def test_a04_queue_model(benchmark):
    r = run_and_report(benchmark, a04_queue_model.run, loads=(8, 24), horizon_s=15.0)
    aware, blind = r.extras["aware"], r.extras["blind"]
    for n in aware:
        # congestion-awareness never hurts measured latency materially
        assert aware[n] <= blind[n] * 1.05, n
