"""E2 bench: latency-vs-bandwidth crossover figure."""

from conftest import run_and_report
from repro.experiments import e02_bandwidth_sweep


def test_e02_bandwidth_sweep(benchmark):
    r = run_and_report(benchmark, e02_bandwidth_sweep.run)
    series = r.extras["series"]
    # device-only flat; edge-only improves with bandwidth; joint dominates all
    assert series["edge_only"][0] > series["edge_only"][-1]
    for i in range(len(r.extras["bandwidths"])):
        best_baseline = min(
            series["device_only"][i], series["edge_only"][i], series["neurosurgeon"][i]
        )
        assert series["joint"][i] <= best_baseline + 1e-9
    assert r.extras["crossover_mbps"] is not None
