"""E10 bench: heterogeneity sweep at constant aggregate capacity."""

from conftest import run_and_report
from repro.experiments import e10_heterogeneity


def test_e10_heterogeneity(benchmark):
    r = run_and_report(benchmark, e10_heterogeneity.run)
    gains = [row[-1] for row in r.rows]
    # the joint-vs-round-robin gain is larger under strong heterogeneity
    # than in the homogeneous cluster
    assert max(gains[1:]) > gains[0]
    assert all(g >= 0.99 for g in gains)  # joint never loses
