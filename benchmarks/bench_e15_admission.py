"""E15 bench: admission control under overload."""

import math

from conftest import run_and_report
from repro.experiments import e15_admission


def test_e15_admission(benchmark):
    r = run_and_report(benchmark, e15_admission.run, horizon_s=15.0)
    ratio = r.extras["ratio"]
    sat = r.extras["admitted_satisfaction"]
    loads = sorted(ratio)
    # admission ratio decays (weakly) with offered load, reaching rejection
    assert ratio[loads[0]] >= ratio[loads[-1]]
    assert ratio[loads[-1]] < 1.0
    # the admitted set keeps high measured satisfaction even at peak load
    finite = [s for s in sat.values() if not math.isnan(s)]
    assert min(finite) > 0.7
