"""E12 bench: component ablation table."""

from conftest import run_and_report
from repro.experiments import e12_ablation


def test_e12_ablation(benchmark):
    r = run_and_report(benchmark, e12_ablation.run, horizon_s=15.0)
    abl = r.extras["ablation"]
    joint = abl["joint"]["objective"]
    # joint beats both single-knob ablations, each of which beats raw offload
    assert joint <= abl["edgent"]["objective"] + 1e-9
    assert joint <= abl["allocation_only"]["objective"] + 1e-9
    assert min(abl["edgent"]["objective"], abl["allocation_only"]["objective"]) <= (
        abl["edge_only"]["objective"] + 1e-9
    )
