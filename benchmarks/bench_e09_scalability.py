"""E9 bench: solver scalability sweep."""

from conftest import run_and_report
from repro.experiments import e09_scalability


def test_e09_scalability(benchmark):
    r = run_and_report(benchmark, e09_scalability.run)
    solve = r.extras["solve_s"]
    # the largest instance still solves fast enough for runtime re-planning
    assert max(solve.values()) < 30.0
    # per-size work counters ride along in --benchmark-json output so the
    # perf gate can compare work done, not just wall time
    benchmark.extra_info["solve_s"] = {
        f"{n}x{m}": t for (n, m), t in solve.items()
    }
    benchmark.extra_info["perf"] = r.extras["perf"]
    for counters in r.extras["perf"].values():
        assert counters["allocate_calls"] > 0
        assert counters["latency_evals"] > 0
