"""E9 bench: solver scalability sweep."""

from conftest import run_and_report
from repro.experiments import e09_scalability


def test_e09_scalability(benchmark):
    r = run_and_report(benchmark, e09_scalability.run)
    solve = r.extras["solve_s"]
    # the largest instance still solves fast enough for runtime re-planning
    assert max(solve.values()) < 30.0
