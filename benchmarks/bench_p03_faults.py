"""P3 micro-bench: the failure-aware runtime (E16's machinery in isolation).

Two attributable measurements on a smart_city x 16-task workload:

- the fault-free event loop with the fault subsystem present — its wall
  time funds the <= 2% overhead budget CI gates (`perf_gate.py --suite sim
  --check-overhead`), so this bench also re-asserts bit-identity against
  the fast path (the subsystem must be invisible when no schedule is set);
- a crash-recover fault run under the full recovery ladder — the shape
  assertion is E16's headline: the policy loses nothing while the
  no-policy run loses every stranded request.
"""

from dataclasses import replace
from time import perf_counter

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.faults import FailurePolicy, FaultSchedule
from repro.sim import SimulationConfig
from repro.sim.runner import simulate_plan
from repro.workloads.scenarios import build_scenario

_WORKLOAD = {}


def _workload():
    """smart_city x 16 tasks + its joint plan, built once per session."""
    if not _WORKLOAD:
        cluster, tasks = build_scenario("smart_city", num_tasks=16, seed=0)
        cands = [build_candidates(t) for t in tasks]
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
        _WORKLOAD["built"] = (tasks, plan, cluster)
    return _WORKLOAD["built"]


def _reports_equal(a, b) -> bool:
    return (
        a.records == b.records
        and a.utilizations == b.utilizations
        and a.discarded_warmup == b.discarded_warmup
        and a.counters == b.counters
    )


def test_faultfree_event_loop_unchanged(benchmark):
    """Fault-free event loop (the overhead-gated path) stays bit-identical."""
    tasks, plan, cluster = _workload()
    cfg = SimulationConfig(horizon_s=20.0, warmup_s=2.0, seed=0)

    fast_report = simulate_plan(tasks, plan, cluster, cfg)
    event_report = benchmark(
        lambda: simulate_plan(tasks, plan, cluster, replace(cfg, fast_path=False))
    )

    assert _reports_equal(fast_report, event_report)
    assert event_report.counters.faults_injected == 0
    assert event_report.counters.lost == 0
    benchmark.extra_info["counters"] = event_report.counters.as_dict()


def test_crash_recover_with_policy(benchmark):
    """Recovery-ladder run: no losses, and the chaos replay is deterministic."""
    tasks, plan, cluster = _workload()
    schedule = FaultSchedule.crash_recover(
        cluster.servers[0].name, crash_s=6.0, down_s=6.0
    )
    cfg = SimulationConfig(
        horizon_s=20.0,
        warmup_s=2.0,
        seed=0,
        faults=schedule,
        failure_policy=FailurePolicy(),
    )

    t0 = perf_counter()
    nopolicy = simulate_plan(
        tasks, plan, cluster, replace(cfg, failure_policy=None)
    )
    nopolicy_s = perf_counter() - t0

    report = benchmark(lambda: simulate_plan(tasks, plan, cluster, cfg))

    assert nopolicy.counters.lost > 0
    assert report.counters.lost == 0
    assert report.counters.failovers + report.counters.retries > 0
    assert report.counters.conserved()
    replay = simulate_plan(tasks, plan, cluster, cfg)
    assert _reports_equal(report, replay)
    benchmark.extra_info["nopolicy_s"] = nopolicy_s
    benchmark.extra_info["counters"] = report.counters.as_dict()
