"""E5 bench: deadline-satisfaction ratio vs deadline tightness."""

from conftest import run_and_report
from repro.experiments import e05_deadline_ratio


def test_e05_deadline_ratio(benchmark):
    r = run_and_report(benchmark, e05_deadline_ratio.run, horizon_s=15.0)
    sat = r.extras["satisfaction"]
    # satisfaction is (weakly) increasing in the deadline scale for joint
    scales = sorted(sat["joint"])
    vals = [sat["joint"][s] for s in scales]
    assert vals[-1] >= vals[0]
    # joint at the loosest deadline satisfies nearly everything
    assert vals[-1] > 0.9
