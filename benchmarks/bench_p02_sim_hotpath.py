"""P2 micro-bench: the simulator hot path.

E4/E5/E11 time whole experiments; this file times the simulator engines in
isolation on an E4-style workload (smart_city x 64 tasks, 60 s horizon) so
regressions are attributable:

- one replication, fast path vs. the reference event loop — the vectorized
  pipeline sweep should win by an order of magnitude while producing a
  bit-identical report;
- eight replications, fast path on 4 worker processes vs. the seed
  configuration (event loop, serial) — the PR's headline ">= 5x" claim.

Both benches assert report equality alongside the speedup, so a "fast but
wrong" regression fails before any timing threshold does.
"""

from dataclasses import replace
from time import perf_counter

from repro.core.candidates import build_candidates
from repro.core.joint import JointOptimizer
from repro.sim import SimulationConfig, merge_reports, run_replications
from repro.sim.runner import simulate_plan
from repro.workloads.scenarios import build_scenario

_WORKLOAD = {}


def _workload():
    """smart_city x 64 tasks + its joint plan, built once per session."""
    if not _WORKLOAD:
        cluster, tasks = build_scenario("smart_city", num_tasks=64, seed=0)
        cands = [build_candidates(t) for t in tasks]
        plan = JointOptimizer(cluster).solve(tasks, candidates=cands, seed=0).plan
        _WORKLOAD["built"] = (tasks, plan, cluster)
    return _WORKLOAD["built"]


def _reports_equal(a, b) -> bool:
    return (
        a.records == b.records
        and a.utilizations == b.utilizations
        and a.discarded_warmup == b.discarded_warmup
        and a.counters == b.counters
    )


def test_single_replication_fastpath(benchmark):
    tasks, plan, cluster = _workload()
    cfg = SimulationConfig(horizon_s=60.0, warmup_s=2.0, seed=0)

    t0 = perf_counter()
    event_report = simulate_plan(tasks, plan, cluster, replace(cfg, fast_path=False))
    event_s = perf_counter() - t0

    fast_report = benchmark(lambda: simulate_plan(tasks, plan, cluster, cfg))

    assert _reports_equal(fast_report, event_report)
    benchmark.extra_info["event_s"] = event_s
    benchmark.extra_info["counters"] = fast_report.counters.as_dict()


def test_replication_fanout_speedup(benchmark):
    """Fast path + 4 workers vs. the seed event loop, 8 replications."""
    tasks, plan, cluster = _workload()
    fast_cfg = SimulationConfig(
        horizon_s=60.0, warmup_s=2.0, seed=0, replications=8, sim_workers=4
    )
    seed_cfg = replace(fast_cfg, fast_path=False, sim_workers=1)

    t0 = perf_counter()
    event_reports = run_replications(tasks, plan, cluster, seed_cfg)
    event_s = perf_counter() - t0

    t0 = perf_counter()
    fast_reports = run_replications(tasks, plan, cluster, fast_cfg)
    fast_s = perf_counter() - t0

    for fast, event in zip(fast_reports, event_reports):
        assert _reports_equal(fast, event)
    speedup = event_s / fast_s
    assert speedup >= 5.0, f"fast fan-out only {speedup:.1f}x vs seed event loop"

    merged = benchmark.pedantic(
        lambda: merge_reports(run_replications(tasks, plan, cluster, fast_cfg)),
        rounds=1,
        iterations=1,
    )
    assert merged.counters.replications == 8
    benchmark.extra_info["event_s"] = event_s
    benchmark.extra_info["fast_s"] = fast_s
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["counters"] = merged.counters.as_dict()
