"""E6 bench: speedup distribution over randomized scenarios."""

import numpy as np

from conftest import run_and_report
from repro.experiments import e06_speedup_dist


def test_e06_speedup_dist(benchmark):
    r = run_and_report(benchmark, e06_speedup_dist.run, num_scenarios=25)
    pooled = np.concatenate([np.array(v) for v in r.extras["speedups"].values()])
    # joint optimizes *predicted* latency under a conservative queueing
    # model, so individual *measured* scenarios can dip below 1x (a baseline
    # riding an unstable queue looks fine over a short horizon) — but the
    # distribution must be centred above 1x and span the paper family's
    # 1.1-18.7x band
    assert np.percentile(pooled, 10) > 0.4
    assert np.median(pooled) > 1.05
    assert pooled.max() > 5.0
    for name, vals in r.extras["speedups"].items():
        assert np.median(vals) >= 0.9, name
